//! PTAS accuracy parameters.

use ccs_core::{CcsError, Result};

/// Accuracy parameter of the approximation schemes.
///
/// The schemes guarantee a makespan of at most `(1 + O(δ)) · opt(I)`, with the
/// constant in the `O(δ)` bounded by 8 for every case implemented here, and a
/// running time exponential in `1/δ`.  `1/δ` must be an integer (as in the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtasParams {
    /// `1/δ` (at least 2).
    pub delta_inv: u64,
}

impl PtasParams {
    /// Constant of the `O(δ)` error term: the schemes return schedules of
    /// makespan at most `(1 + ERROR_FACTOR · δ) · opt(I)`.
    pub const ERROR_FACTOR: u64 = 8;

    /// Creates parameters from an explicit `1/δ`.
    pub fn with_delta_inv(delta_inv: u64) -> Result<Self> {
        if delta_inv < 2 {
            return Err(CcsError::invalid_parameter("1/δ must be at least 2"));
        }
        Ok(PtasParams { delta_inv })
    }

    /// Creates parameters for a target approximation factor `1 + ε`:
    /// `1/δ = ⌈ERROR_FACTOR / ε⌉`, so the guarantee is `(1 + ε) · opt(I)`.
    ///
    /// Small `ε` leads to very large configuration spaces; values below
    /// `1/4` are rejected to protect callers from accidentally unbounded
    /// running times (use [`Self::with_delta_inv`] to override).
    pub fn from_epsilon(epsilon: f64) -> Result<Self> {
        if !(0.25..=8.0).contains(&epsilon) {
            return Err(CcsError::invalid_parameter(
                "epsilon must lie in [0.25, 8]; use with_delta_inv for other accuracies",
            ));
        }
        let delta_inv = (Self::ERROR_FACTOR as f64 / epsilon).ceil() as u64;
        Self::with_delta_inv(delta_inv.max(2))
    }

    /// `δ` as a pair `(1, delta_inv)`.
    pub fn delta_inv(&self) -> u64 {
        self.delta_inv
    }

    /// The guaranteed approximation factor `1 + ERROR_FACTOR · δ`.
    pub fn guaranteed_factor(&self) -> f64 {
        1.0 + Self::ERROR_FACTOR as f64 / self.delta_inv as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_delta() {
        let p = PtasParams::with_delta_inv(4).unwrap();
        assert_eq!(p.delta_inv(), 4);
        assert!((p.guaranteed_factor() - 3.0).abs() < 1e-9);
        assert!(PtasParams::with_delta_inv(1).is_err());
    }

    #[test]
    fn from_epsilon_rounds_up() {
        let p = PtasParams::from_epsilon(1.0).unwrap();
        assert_eq!(p.delta_inv(), 8);
        assert!(p.guaranteed_factor() <= 2.0);
        let p = PtasParams::from_epsilon(4.0).unwrap();
        assert_eq!(p.delta_inv(), 2);
        assert!(PtasParams::from_epsilon(0.01).is_err());
        assert!(PtasParams::from_epsilon(-1.0).is_err());
    }
}

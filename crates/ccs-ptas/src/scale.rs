//! Shared preprocessing: the scaled grid of a makespan guess and the grouping
//! of small jobs (Section 4 of the paper).

use crate::params::PtasParams;
use ccs_core::{ClassId, Instance, JobId, Rational, Scalar};

/// The scaled view of a makespan guess `T`.
#[derive(Debug, Clone)]
pub struct GuessScale {
    /// The guess itself.
    pub t: Rational,
    /// `1/δ`.
    pub delta_inv: u64,
    /// `δ²T` — the unit in which module sizes are measured.
    pub unit: Rational,
    /// `δT` — the threshold separating small from large.
    pub small_threshold: Rational,
    /// `T̄` in units of `δ²T`: `(1 + 4δ)/δ² = (1/δ)² + 4·(1/δ)`.
    pub tbar_units: u64,
}

impl GuessScale {
    /// Creates the scale for guess `t`.
    pub fn new(t: Rational, params: PtasParams) -> Self {
        let d = params.delta_inv;
        let unit = t / Rational::from(d * d);
        GuessScale {
            t,
            delta_inv: d,
            unit,
            small_threshold: t / Rational::from(d),
            tbar_units: d * d + 4 * d,
        }
    }

    /// `⌈x / δ²T⌉` — a quantity rounded up to grid units.
    pub fn units_ceil(&self, x: Rational) -> u64 {
        // Hot in the large-class rounding of every `decide` probe: the
        // two-tier `Scalar` path trades the gcd-normalising rational
        // division for a checked multiply + Euclidean division.
        let u = Scalar::from(x).ceil_div(Scalar::from(self.unit));
        u.max(0) as u64
    }

    /// `T̄` as a rational.
    pub fn tbar(&self) -> Rational {
        self.unit * Rational::from(self.tbar_units)
    }
}

/// A job of the grouped instance `I'`: one or more original jobs of the same
/// class fused together (Section 4.2 / 4.3 preprocessing).
#[derive(Debug, Clone)]
pub struct GroupedJob {
    /// The class.
    pub class: ClassId,
    /// The original jobs fused into this one.
    pub jobs: Vec<JobId>,
    /// Total original processing time.
    pub size: Rational,
}

/// A class of the grouped instance: either *small* (exactly one grouped job of
/// size at most `δT`) or *large* (every grouped job larger than `δT`).
#[derive(Debug, Clone)]
pub struct GroupedClass {
    /// The class.
    pub class: ClassId,
    /// Its grouped jobs.
    pub jobs: Vec<GroupedJob>,
    /// `true` if the class is small.
    pub small: bool,
}

/// Groups the jobs of every class so that each class becomes either small or
/// large (the preprocessing of Lemma 12 / Lemma 15): jobs smaller than `δT`
/// are repeatedly fused into packages of size in `[δT, 2δT)`; a leftover of
/// size `< δT` is merged into another job of the class if one exists,
/// otherwise the class is small.
pub fn group_classes(inst: &Instance, threshold: Rational) -> Vec<GroupedClass> {
    (0..inst.num_classes())
        .map(|class| group_one_class(inst, class, threshold))
        .collect()
}

fn group_one_class(inst: &Instance, class: ClassId, threshold: Rational) -> GroupedClass {
    let mut big: Vec<GroupedJob> = Vec::new();
    let mut pending_jobs: Vec<JobId> = Vec::new();
    // Integer processing times accumulate against a fractional threshold on
    // every probe of the guess grid — `Scalar` keeps the running sum and the
    // comparisons gcd-free, reducing only when a package is emitted.
    let threshold_s = Scalar::from(threshold);
    let mut pending_size = Scalar::ZERO;

    for &job in inst.jobs_of_class(class) {
        let p = Scalar::from(inst.processing_time(job));
        if p >= threshold_s {
            big.push(GroupedJob {
                class,
                jobs: vec![job],
                size: p.to_rational(),
            });
        } else {
            pending_jobs.push(job);
            pending_size += p;
            if pending_size >= threshold_s {
                big.push(GroupedJob {
                    class,
                    jobs: std::mem::take(&mut pending_jobs),
                    size: pending_size.to_rational(),
                });
                pending_size = Scalar::ZERO;
            }
        }
    }

    if pending_jobs.is_empty() {
        let small = big.len() == 1 && big[0].size <= threshold;
        return GroupedClass {
            class,
            jobs: big,
            small,
        };
    }
    if let Some(last) = big.last_mut() {
        // Merge the leftover into an existing (large) grouped job.
        last.jobs.extend(pending_jobs);
        last.size += pending_size.to_rational();
        GroupedClass {
            class,
            jobs: big,
            small: false,
        }
    } else {
        // The whole class is one small job.
        GroupedClass {
            class,
            jobs: vec![GroupedJob {
                class,
                jobs: pending_jobs,
                size: pending_size.to_rational(),
            }],
            small: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn scale_units() {
        let params = PtasParams::with_delta_inv(2).unwrap();
        let scale = GuessScale::new(Rational::from_int(8), params);
        assert_eq!(scale.unit, Rational::from_int(2)); // δ²T = 8/4
        assert_eq!(scale.small_threshold, Rational::from_int(4)); // δT
        assert_eq!(scale.tbar_units, 12);
        assert_eq!(scale.tbar(), Rational::from_int(24));
        assert_eq!(scale.units_ceil(Rational::from_int(5)), 3);
        assert_eq!(scale.units_ceil(Rational::from_int(4)), 2);
    }

    #[test]
    fn grouping_small_class() {
        // All jobs tiny, total below the threshold: single small class.
        let inst = instance_from_pairs(2, 2, &[(1, 0), (1, 0), (1, 0)]).unwrap();
        let grouped = group_classes(&inst, Rational::from_int(5));
        assert_eq!(grouped.len(), 1);
        assert!(grouped[0].small);
        assert_eq!(grouped[0].jobs.len(), 1);
        assert_eq!(grouped[0].jobs[0].size, Rational::from_int(3));
        assert_eq!(grouped[0].jobs[0].jobs.len(), 3);
    }

    #[test]
    fn grouping_bundles_small_jobs_into_packages() {
        // 7 jobs of size 2 with threshold 5: bundles of >= 5 form, leftovers
        // are merged, and every resulting job is > threshold/…
        let jobs: Vec<(u64, u32)> = (0..7).map(|_| (2, 0)).collect();
        let inst = instance_from_pairs(2, 2, &jobs).unwrap();
        let grouped = group_classes(&inst, Rational::from_int(5));
        let class = &grouped[0];
        assert!(!class.small);
        let total: Rational = class.jobs.iter().map(|j| j.size).sum();
        assert_eq!(total, Rational::from_int(14));
        for j in &class.jobs {
            assert!(j.size >= Rational::from_int(5));
            assert!(j.size < Rational::from_int(5) * Rational::new(3, 1));
        }
        let original: usize = class.jobs.iter().map(|j| j.jobs.len()).sum();
        assert_eq!(original, 7);
    }

    #[test]
    fn grouping_keeps_large_jobs_intact_unless_leftover_merges() {
        let inst = instance_from_pairs(2, 2, &[(9, 0), (2, 0), (8, 1)]).unwrap();
        let grouped = group_classes(&inst, Rational::from_int(5));
        // Class 0: job 9 plus a leftover 2 merged into it.
        assert_eq!(grouped[0].jobs.len(), 1);
        assert_eq!(grouped[0].jobs[0].size, Rational::from_int(11));
        assert!(!grouped[0].small);
        // Class 1: single job of size 8, large.
        assert_eq!(grouped[1].jobs.len(), 1);
        assert!(!grouped[1].small);
    }

    #[test]
    fn every_original_job_appears_exactly_once() {
        let jobs: Vec<(u64, u32)> = (0..20).map(|i| (1 + i % 7, (i % 3) as u32)).collect();
        let inst = instance_from_pairs(3, 2, &jobs).unwrap();
        let grouped = group_classes(&inst, Rational::from_int(4));
        let mut seen = vec![false; inst.num_jobs()];
        for class in &grouped {
            for gj in &class.jobs {
                for &j in &gj.jobs {
                    assert!(!seen[j]);
                    seen[j] = true;
                    assert_eq!(inst.class_of(j), class.class);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Mode-equivalence pass: the fast-path arithmetic and the intra-solve
//! parallelism must be *unobservable*.
//!
//! PR 6 introduced two execution modes that exist purely for speed: the
//! overflow-checked fixed-denominator [`Scalar`](ccs_core::Scalar) layer
//! (toggled by [`ccs_core::scalar::set_fast_path`]) and the scoped-thread
//! fan-out of [`ccs_core::par`] (forced serial by
//! [`ccs_core::par::set_threads`]).  Both come with a proof sketch that they
//! cannot change any solver's output — this pass is the executable version of
//! that proof: every registry solver is run under
//!
//! 1. fast-path arithmetic, default thread count (the production mode),
//! 2. pure-rational arithmetic, default thread count,
//! 3. fast-path arithmetic, one thread,
//!
//! and the three [`SolveReport`]s must agree **bit-for-bit** — schedule,
//! makespan, lower bound and every counter.  A mode that runs out of its
//! wall-clock budget skips the comparison (serial runs are legitimately
//! slower); any other asymmetry is a [`Disagreement`].

use crate::oracle::{Disagreement, OracleOptions};
use ccs_core::solver::SolveReport;
use ccs_core::{AnySchedule, CcsError, Instance, Result, SolveContext};
use ccs_engine::Engine;

/// The three execution modes: `(label, fast_path, thread override)`.
const MODES: [(&str, bool, Option<usize>); 3] = [
    ("fast-path/parallel", true, None),
    ("rational/parallel", false, None),
    ("fast-path/serial", true, Some(1)),
];

/// The outcome of one mode-equivalence examination.
#[derive(Debug, Clone, Default)]
pub struct ModeReport {
    /// Every observable difference between two modes (empty on agreement).
    pub disagreements: Vec<Disagreement>,
    /// Solvers whose three runs all completed and were compared.
    pub solvers_compared: usize,
    /// `(solver, reason)` pairs for solvers whose comparison was skipped
    /// (size limits, a mode exhausting its wall-clock budget).
    pub skipped: Vec<(String, String)>,
}

impl ModeReport {
    /// `true` when no mode was observable.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Restores the production mode (fast path on, default threads) when dropped,
/// even if a solver panics mid-comparison.
struct ModeGuard;

impl ModeGuard {
    fn enter(fast_path: bool, threads: Option<usize>) -> Self {
        ccs_core::scalar::set_fast_path(fast_path);
        ccs_core::par::set_threads(threads);
        ModeGuard
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        ccs_core::scalar::set_fast_path(true);
        ccs_core::par::set_threads(None);
    }
}

/// [`mode_equivalence_check_with`] under [`OracleOptions::default`].
pub fn mode_equivalence_check(engine: &Engine, inst: &Instance) -> ModeReport {
    mode_equivalence_check_with(engine, inst, &OracleOptions::default())
}

/// Runs every registry solver of `engine` on `inst` under all three modes
/// and demands bit-identical reports (see the module documentation).
pub fn mode_equivalence_check_with(
    engine: &Engine,
    inst: &Instance,
    options: &OracleOptions,
) -> ModeReport {
    let mut report = ModeReport::default();
    for solver in engine.registry().iter() {
        let mut outcomes: Vec<(&str, Result<SolveReport<AnySchedule>>)> = Vec::new();
        for (label, fast_path, threads) in MODES {
            let _guard = ModeGuard::enter(fast_path, threads);
            let ctx = match options.solver_budget {
                Some(budget) => SolveContext::unbounded().with_timeout(budget),
                None => SolveContext::unbounded(),
            };
            outcomes.push((label, solver.solve_any_ctx(inst, &ctx)));
        }

        // A budgeted-out mode is a skip, not a finding: the serial and the
        // pure-rational runs are legitimately slower than production.
        if let Some((label, _)) = outcomes
            .iter()
            .find(|(_, outcome)| matches!(outcome, Err(CcsError::DeadlineExceeded)))
        {
            report.skipped.push((
                solver.name().to_string(),
                format!("budget exhausted under the {label} mode"),
            ));
            continue;
        }

        let (baseline_label, baseline) = &outcomes[0];
        let mut compared = true;
        for (label, outcome) in &outcomes[1..] {
            match (baseline, outcome) {
                (Ok(expected), Ok(actual)) => {
                    report.disagreements.extend(
                        report_differences(expected, actual, label).into_iter().map(
                            |(check, detail)| Disagreement {
                                solver: solver.name().to_string(),
                                check,
                                detail,
                            },
                        ),
                    );
                }
                (Err(expected), Err(actual)) => {
                    // Error verdicts (infeasible, size limits) must not
                    // depend on the mode either.
                    if format!("{expected}") != format!("{actual}") {
                        report.disagreements.push(Disagreement {
                            solver: solver.name().to_string(),
                            check: "mode-equivalence/error".to_string(),
                            detail: format!(
                                "{baseline_label} fails with '{expected}' \
                                 but {label} fails with '{actual}'"
                            ),
                        });
                    }
                    compared = false;
                }
                (Ok(_), Err(error)) => {
                    report.disagreements.push(Disagreement {
                        solver: solver.name().to_string(),
                        check: "mode-equivalence/error".to_string(),
                        detail: format!(
                            "{baseline_label} returns a schedule but {label} \
                             fails with '{error}'"
                        ),
                    });
                    compared = false;
                }
                (Err(error), Ok(_)) => {
                    report.disagreements.push(Disagreement {
                        solver: solver.name().to_string(),
                        check: "mode-equivalence/error".to_string(),
                        detail: format!(
                            "{baseline_label} fails with '{error}' but {label} \
                             returns a schedule"
                        ),
                    });
                    compared = false;
                }
            }
        }
        if compared && baseline.is_ok() {
            report.solvers_compared += 1;
        }
    }
    report
}

/// Field-by-field comparison of two reports; returns `(check, detail)` pairs.
fn report_differences(
    expected: &SolveReport<AnySchedule>,
    actual: &SolveReport<AnySchedule>,
    mode: &str,
) -> Vec<(String, String)> {
    let mut diffs = Vec::new();
    let mut push = |field: &str, detail: String| {
        diffs.push((format!("mode-equivalence/{field}"), detail));
    };
    if actual.makespan != expected.makespan {
        push(
            "makespan",
            format!(
                "{mode} reports makespan {} instead of {}",
                actual.makespan, expected.makespan
            ),
        );
    }
    if actual.lower_bound != expected.lower_bound {
        push(
            "lower-bound",
            format!(
                "{mode} reports lower bound {} instead of {}",
                actual.lower_bound, expected.lower_bound
            ),
        );
    }
    if actual.stats != expected.stats {
        push(
            "stats",
            format!(
                "{mode} reports counters {:?} instead of {:?}",
                actual.stats, expected.stats
            ),
        );
    }
    if actual.schedule != expected.schedule {
        push(
            "schedule",
            format!("{mode} constructs a different (still valid) schedule"),
        );
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_is_mode_blind_on_random_instances() {
        let engine = Engine::new();
        for seed in 0..6 {
            let inst = ccs_gen::tiny_random(seed);
            let report = mode_equivalence_check(&engine, &inst);
            assert!(report.agreed(), "seed {seed}: {:?}", report.disagreements);
            assert!(
                report.solvers_compared + report.skipped.len() >= 8,
                "seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn modes_are_restored_after_the_check() {
        let engine = Engine::new();
        let inst = ccs_gen::tiny_random(1);
        let _ = mode_equivalence_check(&engine, &inst);
        assert!(ccs_core::scalar::fast_path_enabled());
    }

    #[test]
    fn infeasible_refusals_are_consistent_across_modes() {
        let engine = Engine::new();
        let inst =
            ccs_core::instance::instance_from_pairs(2, 1, &[(1, 0), (1, 1), (1, 2)]).unwrap();
        let report = mode_equivalence_check(&engine, &inst);
        assert!(report.agreed(), "{:?}", report.disagreements);
        assert_eq!(report.solvers_compared, 0);
    }
}

//! The certificate checker: re-examines a solver's report from first
//! principles.
//!
//! A [`Certificate`] is a list of named checks, each of which either
//! **passes**, records a **violation** (the report is provably wrong), or is
//! **inconclusive** (nothing provable either way without the true optimum —
//! e.g. an approximation factor that exceeds the certified lower bound but
//! might still be within factor·OPT).  The differential oracle closes the
//! inconclusive gap by supplying the exact solver's optimum as `known_opt`.
//!
//! Checks:
//!
//! 1. `feasibility` — the schedule satisfies every condition of its model,
//!    re-validated by the independent auditor [`ccs_core::audit`],
//! 2. `makespan` — the reported makespan equals the audited recomputation,
//! 3. `lower-bound` — the solver's own lower bound never exceeds its
//!    makespan nor the known optimum (and equals the makespan for exact
//!    solvers),
//! 4. `certified-bound` — the audited makespan is at least the certified
//!    lower bound of [`crate::bounds`] (a feasible schedule below a certified
//!    bound means the bound machinery or the audit itself is broken),
//! 5. `guarantee` — the claimed factor holds: against `known_opt` when
//!    available (violations are provable), otherwise against the certified
//!    lower bound (only satisfaction is provable; excess is inconclusive).

use crate::bounds::certified_lower_bound;
use ccs_core::audit::audit_schedule;
use ccs_core::solver::SolveReport;
use ccs_core::{AnySchedule, Guarantee, Instance, Rational, Schedule};

/// Outcome of a single certificate check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property provably holds.
    Pass,
    /// The property provably fails; the message names the witness.
    Violation(String),
    /// Not provable either way from the available information.
    Inconclusive(String),
}

/// One named check of a [`Certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// Stable check name (`"feasibility"`, `"makespan"`, …).
    pub name: &'static str,
    /// What the check concluded.
    pub verdict: Verdict,
}

/// The full certificate of one solve report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// All checks, in the order of the module documentation.
    pub checks: Vec<Check>,
}

impl Certificate {
    /// The provable violations (empty for a clean certificate).
    pub fn violations(&self) -> Vec<&Check> {
        self.checks
            .iter()
            .filter(|check| matches!(check.verdict, Verdict::Violation(_)))
            .collect()
    }

    /// `true` when no check found a provable violation (inconclusive checks
    /// are allowed — absence of the true optimum is not a defect).
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }
}

/// Certifies a solve report against the instance it claims to solve.
///
/// `guarantee` is the a-priori claim of the solver that produced the report;
/// `known_opt` is the independently established optimum of the report's
/// placement model, when one is available (see [`crate::oracle`]).
pub fn certify(
    inst: &Instance,
    guarantee: Guarantee,
    report: &SolveReport<AnySchedule>,
    known_opt: Option<Rational>,
) -> Certificate {
    let mut checks = Vec::with_capacity(5);
    let kind = report.schedule.kind();
    let certified = certified_lower_bound(inst, kind);

    // 1 + 2: independent feasibility audit and makespan recomputation.
    let audited = match audit_schedule(inst, &report.schedule) {
        Ok(audit) => {
            checks.push(Check {
                name: "feasibility",
                verdict: Verdict::Pass,
            });
            checks.push(Check {
                name: "makespan",
                verdict: if audit.makespan == report.makespan {
                    Verdict::Pass
                } else {
                    Verdict::Violation(format!(
                        "reported makespan {} but the schedule yields {}",
                        report.makespan, audit.makespan
                    ))
                },
            });
            Some(audit.makespan)
        }
        Err(error) => {
            checks.push(Check {
                name: "feasibility",
                verdict: Verdict::Violation(error.to_string()),
            });
            checks.push(Check {
                name: "makespan",
                verdict: Verdict::Inconclusive(
                    "no audited makespan for an infeasible schedule".to_string(),
                ),
            });
            None
        }
    };

    // 3: the solver's own lower bound.  A claimed bound above the *known
    // optimum* is unsound even when it sits below the makespan — exactly
    // the bug class the splittable PTAS's clamped bound belonged to.
    checks.push(Check {
        name: "lower-bound",
        verdict: if report.lower_bound > report.makespan {
            Verdict::Violation(format!(
                "claimed lower bound {} exceeds makespan {}",
                report.lower_bound, report.makespan
            ))
        } else if matches!(known_opt, Some(opt) if report.lower_bound > opt) {
            Verdict::Violation(format!(
                "claimed lower bound {} exceeds the established optimum {}",
                report.lower_bound,
                known_opt.expect("matched Some")
            ))
        } else if guarantee == Guarantee::Exact && report.lower_bound != report.makespan {
            Verdict::Violation(format!(
                "exact solver's lower bound {} differs from its makespan {}",
                report.lower_bound, report.makespan
            ))
        } else {
            Verdict::Pass
        },
    });

    // 4: no feasible schedule beats a certified bound.
    checks.push(Check {
        name: "certified-bound",
        verdict: match audited {
            Some(makespan) if makespan < certified => Verdict::Violation(format!(
                "audited makespan {makespan} beats the certified lower bound {certified}"
            )),
            Some(_) => Verdict::Pass,
            None => Verdict::Inconclusive("schedule is infeasible".to_string()),
        },
    });

    // 5: the claimed guarantee.
    let makespan = audited.unwrap_or(report.makespan);
    checks.push(Check {
        name: "guarantee",
        verdict: audit_guarantee(guarantee, makespan, certified, known_opt),
    });

    Certificate { checks }
}

fn audit_guarantee(
    guarantee: Guarantee,
    makespan: Rational,
    certified: Rational,
    known_opt: Option<Rational>,
) -> Verdict {
    // Any feasible schedule upper-bounds the optimum, so no makespan may
    // undercut a known optimum.
    if let Some(opt) = known_opt {
        if makespan < opt {
            return Verdict::Violation(format!(
                "makespan {makespan} beats the established optimum {opt}"
            ));
        }
    }
    let factor = match guarantee {
        Guarantee::Exact => Rational::ONE,
        Guarantee::Factor(factor) => factor,
        // Heuristics promise nothing; there is nothing to audit.
        Guarantee::Heuristic => return Verdict::Pass,
    };
    match known_opt {
        Some(opt) => {
            if makespan > factor * opt {
                Verdict::Violation(format!(
                    "makespan {makespan} exceeds {factor} × optimum {opt}"
                ))
            } else {
                Verdict::Pass
            }
        }
        None => {
            // Without the optimum only satisfaction is provable:
            // makespan ≤ factor · certified ≤ factor · OPT.
            if (certified.is_positive() && makespan <= factor * certified) || makespan.is_zero() {
                Verdict::Pass
            } else {
                Verdict::Inconclusive(format!(
                    "makespan {makespan} vs factor {factor} × certified bound {certified}; \
                     needs the true optimum to decide"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;
    use ccs_core::solver::SolveStats;
    use ccs_core::NonPreemptiveSchedule;

    fn report(
        inst: &Instance,
        assignment: Vec<u64>,
        lower_bound: Rational,
    ) -> SolveReport<AnySchedule> {
        let schedule = NonPreemptiveSchedule::new(assignment);
        let makespan = schedule.makespan(inst);
        SolveReport {
            schedule: schedule.into(),
            makespan,
            lower_bound,
            stats: SolveStats::default(),
        }
    }

    #[test]
    fn clean_exact_report_passes_every_check() {
        let inst = instance_from_pairs(2, 1, &[(6, 0), (1, 0), (5, 1)]).unwrap();
        let rep = report(&inst, vec![0, 0, 1], Rational::from_int(7));
        let cert = certify(&inst, Guarantee::Exact, &rep, Some(Rational::from_int(7)));
        assert!(cert.is_clean(), "{cert:?}");
        assert!(cert
            .checks
            .iter()
            .all(|check| check.verdict == Verdict::Pass));
    }

    #[test]
    fn infeasible_schedule_is_a_violation() {
        let inst = instance_from_pairs(2, 1, &[(6, 0), (1, 0), (5, 1)]).unwrap();
        // Machine 0 holds both classes with one slot.
        let rep = report(&inst, vec![0, 0, 0], Rational::from_int(7));
        let cert = certify(&inst, Guarantee::Exact, &rep, None);
        assert!(!cert.is_clean());
        assert_eq!(cert.violations()[0].name, "feasibility");
    }

    #[test]
    fn misreported_makespan_is_caught() {
        let inst = instance_from_pairs(2, 1, &[(6, 0), (1, 0), (5, 1)]).unwrap();
        let mut rep = report(&inst, vec![0, 0, 1], Rational::from_int(5));
        rep.makespan = Rational::from_int(5); // lies: the schedule yields 7
        let cert = certify(&inst, Guarantee::Exact, &rep, None);
        let violated: Vec<&str> = cert.violations().iter().map(|check| check.name).collect();
        assert!(violated.contains(&"makespan"), "{violated:?}");
        // The certified-bound check audits the *schedule*, not the claim:
        // the audited makespan 7 sits above the certified bound 6, so only
        // the makespan check (and nothing else) fires.
        assert_eq!(cert.violations().len(), 1);
    }

    #[test]
    fn exact_claim_with_suboptimal_makespan_is_caught_via_known_opt() {
        let inst = instance_from_pairs(2, 2, &[(3, 0), (1, 1), (1, 1)]).unwrap();
        // Suboptimal but feasible: both small jobs ride with the big one.
        let rep = report(&inst, vec![0, 0, 0], Rational::from_int(5));
        let cert = certify(&inst, Guarantee::Exact, &rep, Some(Rational::from_int(3)));
        let violated: Vec<&str> = cert.violations().iter().map(|check| check.name).collect();
        assert!(violated.contains(&"guarantee"), "{cert:?}");
        // Without the optimum the same report is merely inconclusive.
        let cert = certify(&inst, Guarantee::Exact, &rep, None);
        assert!(cert.is_clean());
        assert!(cert
            .checks
            .iter()
            .any(|check| matches!(check.verdict, Verdict::Inconclusive(_))));
    }

    #[test]
    fn factor_guarantee_certified_against_the_bound_alone() {
        let inst = instance_from_pairs(2, 2, &[(4, 0), (4, 1)]).unwrap();
        // Makespan 4 = certified bound: any factor ≥ 1 is certified.
        let rep = report(&inst, vec![0, 1], Rational::from_int(4));
        let cert = certify(&inst, Guarantee::Factor(Rational::from_int(2)), &rep, None);
        assert!(cert.is_clean());
        assert!(cert
            .checks
            .iter()
            .all(|check| check.verdict == Verdict::Pass));
    }

    #[test]
    fn unsound_lower_bound_between_optimum_and_makespan_is_caught() {
        // OPT 2, makespan 4, claimed lower bound 3: the bound is below the
        // makespan (old check passes) yet provably above the optimum.
        let inst = instance_from_pairs(2, 2, &[(2, 0), (1, 1), (1, 1)]).unwrap();
        let rep = report(&inst, vec![0, 0, 0], Rational::from_int(3));
        assert_eq!(rep.makespan, Rational::from_int(4));
        let cert = certify(
            &inst,
            Guarantee::Factor(Rational::from_int(2)),
            &rep,
            Some(Rational::from_int(2)),
        );
        let violated: Vec<&str> = cert.violations().iter().map(|check| check.name).collect();
        assert_eq!(violated, vec!["lower-bound"], "{cert:?}");
        // Without the optimum the bound is unprovable either way: clean.
        let cert = certify(&inst, Guarantee::Factor(Rational::from_int(2)), &rep, None);
        assert!(cert.is_clean(), "{cert:?}");
    }

    #[test]
    fn beating_the_optimum_is_a_violation() {
        let inst = instance_from_pairs(2, 2, &[(4, 0), (4, 1)]).unwrap();
        let rep = report(&inst, vec![0, 1], Rational::from_int(4));
        let cert = certify(
            &inst,
            Guarantee::Heuristic,
            &rep,
            Some(Rational::from_int(5)), // a wrong "optimum" above the makespan
        );
        let violated: Vec<&str> = cert.violations().iter().map(|check| check.name).collect();
        assert!(violated.contains(&"guarantee"));
    }
}

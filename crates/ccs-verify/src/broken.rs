//! An intentionally broken solver, used to prove the verification subsystem
//! actually catches bugs (`ccs-fuzz --broken` and the crate's tests).
//!
//! [`BrokenExactNonPreemptive`] **claims** [`Guarantee::Exact`] but merely
//! assigns every class round-robin to machine `class % m` — feasible on any
//! feasible instance (at most `⌈C/m⌉ ≤ c` classes land on one machine), yet
//! usually far from optimal.  Both its makespan and its "lower bound" are
//! reported confidently, so nothing short of an independent cross-check can
//! tell it apart from a real exact solver; the differential oracle catches
//! it through the bit-for-bit exact-consensus check and the guarantee audit.

use ccs_core::solver::{Guarantee, SolveReport, SolveStats, Solver};
use ccs_core::{Instance, NonPreemptiveSchedule, Result, Schedule, ScheduleKind};
use ccs_engine::{Engine, SolverRegistry};

/// Registry name of the broken solver.
pub const BROKEN_SOLVER_NAME: &str = "broken-exact-nonpreemptive";

/// A solver that claims exactness but schedules whole classes round-robin.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokenExactNonPreemptive;

impl Solver<NonPreemptiveSchedule> for BrokenExactNonPreemptive {
    fn name(&self) -> &'static str {
        BROKEN_SOLVER_NAME
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::NonPreemptive
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::Exact // the lie the verifier must expose
    }

    fn solve(&self, inst: &Instance) -> Result<SolveReport<NonPreemptiveSchedule>> {
        if !inst.is_feasible() {
            return Err(ccs_core::CcsError::infeasible(
                "more classes than class slots",
            ));
        }
        let assignment = (0..inst.num_jobs())
            .map(|job| inst.class_of(job) as u64 % inst.machines())
            .collect();
        let schedule = NonPreemptiveSchedule::new(assignment);
        let makespan = schedule.makespan(inst);
        Ok(SolveReport {
            schedule,
            makespan,
            // Reported as if proven optimal.
            lower_bound: makespan,
            stats: SolveStats::default(),
        })
    }
}

/// The default registry plus the broken solver, as an engine.
pub fn engine_with_broken_solver() -> Engine {
    let mut registry = SolverRegistry::with_defaults();
    registry
        .register(BrokenExactNonPreemptive)
        .expect("broken solver name is unique");
    Engine::with_registry(registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn broken_solver_is_feasible_but_suboptimal() {
        let inst = instance_from_pairs(2, 2, &[(2, 0), (1, 1), (1, 2)]).unwrap();
        let report = BrokenExactNonPreemptive.solve(&inst).unwrap();
        report.schedule.validate(&inst).unwrap();
        // Classes 0 and 2 share machine 0: makespan 3, optimum 2.
        assert_eq!(report.makespan, ccs_core::Rational::from_int(3));
    }

    #[test]
    fn broken_engine_registers_fifteen_solvers() {
        // The fourteen defaults plus the broken impostor.
        let engine = engine_with_broken_solver();
        assert_eq!(engine.registry().len(), 15);
        assert!(engine.registry().get(BROKEN_SOLVER_NAME).is_some());
    }
}

//! Metamorphic invariants: transform an instance in a way whose effect on
//! the answer is known, and assert the solvers (and the canonical
//! fingerprint) transform accordingly.
//!
//! * **relabelling** — permuting jobs and injectively renaming class labels
//!   changes nothing a scheduling model can observe: the canonical
//!   [`Fingerprint`](ccs_core::Fingerprint) must be identical and every
//!   exact optimum must be bit-for-bit equal,
//! * **scaling** — multiplying every processing time by an integer `s > 0`
//!   maps the schedule space onto itself with all costs scaled by `s`, so
//!   every optimum scales *exactly*; exact solvers are held to that
//!   bit-for-bit.  Approximation algorithms are **not** held to bit-exact
//!   scaling — the non-preemptive ones round against the integer grid, which
//!   legitimately shifts their output across scales — but their guarantee
//!   must transport: on the scaled instance the makespan must stay within
//!   the claimed factor of `s · OPT`,
//! * **duplication** — doubling the machines and duplicating every job can
//!   never *increase* the optimum: scheduling the copy on the fresh
//!   machines mirrors the original schedule, so `OPT' ≤ OPT` in every
//!   model (the converse inequality is not a theorem — mixing copies may
//!   help — so only this direction is asserted),
//! * **dominated-shape dropping** — removing a shape `(k_b, t_b)` from a
//!   moldable menu that also contains `(k_a, t_a)` with `k_a ≤ k_b` and
//!   `t_a ≤ t_b` never changes the moldable optimum: any schedule choosing
//!   the dominated shape can choose the dominating one on a subset of the
//!   same machines without finishing later, and removing an option can
//!   never *decrease* the optimum.
//!
//! All transforms carry the `JobShapes` extension slot: a shaped job keeps
//! its menu under relabelling and duplication, and scaling multiplies every
//! shape time alongside the processing time.

use crate::certifier::{certify, Verdict};
use crate::oracle::{run_all_solvers, Disagreement, OracleOptions, OracleReport};
use ccs_core::{
    Guarantee, Instance, InstanceBuilder, JobShape, ModelSpec, Rational, ScheduleKind, SolveContext,
};
use ccs_engine::Engine;
use ccs_gen::rng::Rng;

/// The declared shape menu of a job, or the empty slice for jobs without
/// one (the builder treats an empty slice as "no declared menu").
fn declared(inst: &Instance, job: usize) -> &[JobShape] {
    inst.declared_shapes(job).unwrap_or(&[])
}

/// Permutes the jobs of `inst` and injectively renames its class labels
/// (seeded, deterministic).
pub fn relabel(inst: &Instance, seed: u64) -> Instance {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5EED_1ABE1);
    let mut order: Vec<usize> = (0..inst.num_jobs()).collect();
    // Fisher–Yates with the workspace RNG.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below_usize(i + 1));
    }
    let mut builder = InstanceBuilder::new(inst.machines(), inst.class_slots());
    for &job in &order {
        let label = inst.class_label(inst.class_of(job));
        // Odd multiplier: a bijection on u32, so distinct labels stay
        // distinct.
        let renamed = label.wrapping_mul(0x9E37_79B1).wrapping_add(17);
        builder = builder.job_shaped(inst.processing_time(job), renamed, declared(inst, job));
    }
    builder.build().expect("relabelling preserves validity")
}

/// Multiplies every processing time by `factor > 0`, or returns `None` when
/// a product would overflow `u64` (a wrapped product would silently compare
/// the optima of an unrelated instance).
pub fn scale(inst: &Instance, factor: u64) -> Option<Instance> {
    assert!(factor > 0, "scaling factor must be positive");
    let mut builder = InstanceBuilder::new(inst.machines(), inst.class_slots());
    for job in 0..inst.num_jobs() {
        let shapes = declared(inst, job)
            .iter()
            .map(|&(k, t)| Some((k, t.checked_mul(factor)?)))
            .collect::<Option<Vec<JobShape>>>()?;
        builder = builder.job_shaped(
            inst.processing_time(job).checked_mul(factor)?,
            inst.class_label(inst.class_of(job)),
            &shapes,
        );
    }
    Some(builder.build().expect("scaling preserves validity"))
}

/// Doubles the machines and duplicates every job (`None` when `2·m` would
/// overflow `u64` — without the full doubling the mirror argument behind
/// the invariant does not hold).
pub fn duplicate(inst: &Instance) -> Option<Instance> {
    let mut builder = InstanceBuilder::new(inst.machines().checked_mul(2)?, inst.class_slots());
    for _copy in 0..2 {
        for job in 0..inst.num_jobs() {
            builder = builder.job_shaped(
                inst.processing_time(job),
                inst.class_label(inst.class_of(job)),
                declared(inst, job),
            );
        }
    }
    Some(builder.build().expect("duplication preserves validity"))
}

/// Removes the first *dominated* shape — a menu entry `(k_b, t_b)` whose
/// menu also contains `(k_a, t_a)` with `k_a ≤ k_b`, `t_a ≤ t_b` and
/// `(k_a, t_a) ≠ (k_b, t_b)` — from the first job carrying one.  `None`
/// when no menu contains a dominated shape.  Dominating shapes always
/// include a `k = 1` entry whenever the dominated one had `k = 1`, so the
/// menu's mandatory sequential alternative survives.
pub fn drop_dominated_shape(inst: &Instance) -> Option<Instance> {
    let mut target: Option<(usize, usize)> = None;
    'jobs: for job in 0..inst.num_jobs() {
        let menu = declared(inst, job);
        for (b_idx, &(kb, tb)) in menu.iter().enumerate() {
            let dominated = menu
                .iter()
                .enumerate()
                .any(|(a_idx, &(ka, ta))| a_idx != b_idx && ka <= kb && ta <= tb);
            if dominated {
                target = Some((job, b_idx));
                break 'jobs;
            }
        }
    }
    let (drop_job, drop_idx) = target?;
    let mut builder = InstanceBuilder::new(inst.machines(), inst.class_slots());
    for job in 0..inst.num_jobs() {
        let mut shapes = declared(inst, job).to_vec();
        if job == drop_job {
            shapes.remove(drop_idx);
        }
        builder = builder.job_shaped(
            inst.processing_time(job),
            inst.class_label(inst.class_of(job)),
            &shapes,
        );
    }
    Some(builder.build().expect("shape dropping preserves validity"))
}

/// The exact optimum of a model under the per-solver budget (`None` when
/// the exact solver is size-limited or budgeted out).
fn exact_optimum(
    engine: &Engine,
    inst: &Instance,
    kind: ScheduleKind,
    options: &OracleOptions,
) -> Option<Rational> {
    let solver = engine.registry().get(crate::exact_solver_name(kind))?;
    let ctx = match options.solver_budget {
        Some(budget) => SolveContext::unbounded().with_timeout(budget),
        None => SolveContext::unbounded(),
    };
    solver
        .solve_any_ctx(inst, &ctx)
        .ok()
        .map(|report| report.makespan)
}

/// [`metamorphic_check_with`] under [`OracleOptions::default`].
pub fn metamorphic_check(engine: &Engine, inst: &Instance, seed: u64) -> Vec<Disagreement> {
    metamorphic_check_with(engine, inst, seed, &OracleOptions::default())
}

/// Runs all three metamorphic invariants on `inst` and returns every
/// violated one as a [`Disagreement`].
pub fn metamorphic_check_with(
    engine: &Engine,
    inst: &Instance,
    seed: u64,
    options: &OracleOptions,
) -> Vec<Disagreement> {
    let mut findings = Vec::new();

    // The original optima anchor every invariant; compute them once.
    let original_optima: Vec<Option<Rational>> = ModelSpec::all()
        .map(|spec| exact_optimum(engine, inst, spec.kind, options))
        .collect();
    let original = |kind: ScheduleKind| original_optima[crate::oracle::model_index(kind)];

    // --- Relabelling. ------------------------------------------------------
    let permuted = relabel(inst, seed);
    if permuted.fingerprint() != inst.fingerprint() {
        findings.push(Disagreement {
            solver: "canonical-fingerprint".to_string(),
            check: "metamorphic-relabel".to_string(),
            detail: format!(
                "fingerprint {} changed to {} under job permutation / class relabelling",
                inst.fingerprint(),
                permuted.fingerprint()
            ),
        });
    }
    for kind in ModelSpec::all().map(|spec| spec.kind) {
        let (Some(original), Some(relabelled)) = (
            original(kind),
            exact_optimum(engine, &permuted, kind, options),
        ) else {
            continue; // outside the exact solvers' limits or budget
        };
        if original != relabelled {
            findings.push(Disagreement {
                solver: crate::exact_solver_name(kind).to_string(),
                check: "metamorphic-relabel".to_string(),
                detail: format!(
                    "{kind} optimum {original} changed to {relabelled} under relabelling"
                ),
            });
        }
    }

    // --- Scaling (skipped when a scaled time would overflow u64). ----------
    let factor = 2 + seed % 5;
    if let Some(scaled) = scale(inst, factor) {
        let multiplier = Rational::from(factor);
        // One sweep over the scaled instance serves both halves of the
        // invariant: the exact solvers' runs carry the scaled optima (no
        // second exponential solve), the rest are audited against s · OPT.
        let mut scaled_report = OracleReport::default();
        let runs = run_all_solvers(engine, &scaled, options, &mut scaled_report);
        findings.extend(scaled_report.disagreements.into_iter().map(|mut found| {
            found.check = format!("metamorphic-scale/{}", found.check);
            found
        }));
        let mut scaled_optima: Vec<Option<Rational>> = vec![None; ModelSpec::all().count()];
        for kind in ModelSpec::all().map(|spec| spec.kind) {
            let scaled_opt = runs
                .iter()
                .find(|run| run.name == crate::exact_solver_name(kind))
                .map(|run| run.report.makespan);
            let (Some(original), Some(scaled_opt)) = (original(kind), scaled_opt) else {
                continue;
            };
            if scaled_opt != original * multiplier {
                findings.push(Disagreement {
                    solver: crate::exact_solver_name(kind).to_string(),
                    check: "metamorphic-scale".to_string(),
                    detail: format!(
                        "{kind} optimum {original} scaled by {factor} became {scaled_opt}, \
                         expected {}",
                        original * multiplier
                    ),
                });
            }
            scaled_optima[crate::oracle::model_index(kind)] = Some(original * multiplier);
        }
        for run in runs.iter().filter(|run| run.guarantee != Guarantee::Exact) {
            let known_opt = scaled_optima[crate::oracle::model_index(run.kind)];
            let certificate = certify(&scaled, run.guarantee, &run.report, known_opt);
            for check in &certificate.checks {
                if let Verdict::Violation(detail) = &check.verdict {
                    findings.push(Disagreement {
                        solver: run.name.clone(),
                        check: format!("metamorphic-scale/{}", check.name),
                        detail: detail.clone(),
                    });
                }
            }
        }
    }

    // --- Dominated-shape dropping (moldable menus only). -------------------
    if let Some(pruned) = drop_dominated_shape(inst) {
        let kind = ScheduleKind::Moldable;
        if let (Some(original), Some(pruned_opt)) = (
            original(kind),
            exact_optimum(engine, &pruned, kind, options),
        ) {
            if original != pruned_opt {
                findings.push(Disagreement {
                    solver: crate::exact_solver_name(kind).to_string(),
                    check: "metamorphic-drop-dominated-shape".to_string(),
                    detail: format!(
                        "moldable optimum {original} changed to {pruned_opt} after \
                         dropping a dominated shape"
                    ),
                });
            }
        }
    }

    // --- Duplication (skipped when 2·m would overflow u64). ----------------
    let Some(doubled) = duplicate(inst) else {
        return findings;
    };
    for kind in ModelSpec::all().map(|spec| spec.kind) {
        let (Some(original), Some(dup)) = (
            original(kind),
            exact_optimum(engine, &doubled, kind, options),
        ) else {
            continue; // doubling machines may leave the exact limits
        };
        if dup > original {
            findings.push(Disagreement {
                solver: crate::exact_solver_name(kind).to_string(),
                check: "metamorphic-duplicate".to_string(),
                detail: format!(
                    "duplicated instance has {kind} optimum {dup} > original {original}, \
                     but mirroring the original schedule achieves {original}"
                ),
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn transforms_preserve_shape() {
        let inst = instance_from_pairs(3, 2, &[(10, 4), (20, 9), (5, 4), (8, 2)]).unwrap();
        let permuted = relabel(&inst, 3);
        assert_eq!(permuted.num_jobs(), inst.num_jobs());
        assert_eq!(permuted.num_classes(), inst.num_classes());
        assert_eq!(permuted.fingerprint(), inst.fingerprint());

        let scaled = scale(&inst, 3).unwrap();
        assert_eq!(scaled.total_load(), 3 * inst.total_load());
        assert_ne!(scaled.fingerprint(), inst.fingerprint());
        // Overflowing scales are refused, not wrapped.
        let huge = instance_from_pairs(2, 1, &[(u64::MAX / 2, 0)]).unwrap();
        assert!(scale(&huge, 3).is_none());

        let doubled = duplicate(&inst).unwrap();
        assert_eq!(doubled.num_jobs(), 2 * inst.num_jobs());
        assert_eq!(doubled.machines(), 2 * inst.machines());
        assert_eq!(doubled.num_classes(), inst.num_classes());
        let many = instance_from_pairs(u64::MAX / 2 + 1, 1, &[(1, 0)]).unwrap();
        assert!(duplicate(&many).is_none());
    }

    #[test]
    fn transforms_carry_shape_menus() {
        let inst = InstanceBuilder::new(3, 2)
            .job_shaped(10, 0, &[(1, 10), (2, 6), (3, 6)])
            .job(7, 1)
            .build()
            .unwrap();

        let permuted = relabel(&inst, 5);
        assert!(permuted.has_shapes());
        assert_eq!(permuted.fingerprint(), inst.fingerprint());

        let scaled = scale(&inst, 4).unwrap();
        let shaped_job = (0..scaled.num_jobs())
            .find(|&j| scaled.declared_shapes(j).is_some())
            .unwrap();
        assert_eq!(
            scaled.declared_shapes(shaped_job).unwrap(),
            &[(1, 40), (2, 24), (3, 24)]
        );

        let doubled = duplicate(&inst).unwrap();
        let shaped_count = (0..doubled.num_jobs())
            .filter(|&j| doubled.declared_shapes(j).is_some())
            .count();
        assert_eq!(shaped_count, 2);

        // (2, 6) dominates (3, 6): dropping the wider twin must keep the
        // rest of the menu intact.
        let pruned = drop_dominated_shape(&inst).unwrap();
        let menu = (0..pruned.num_jobs())
            .find_map(|j| pruned.declared_shapes(j))
            .unwrap();
        assert_eq!(menu, &[(1, 10), (2, 6)]);

        // No menu, or no dominated entry: nothing to drop.
        let plain = instance_from_pairs(2, 2, &[(3, 0), (4, 1)]).unwrap();
        assert!(drop_dominated_shape(&plain).is_none());
        assert!(drop_dominated_shape(&pruned).is_none());
    }

    #[test]
    fn registry_satisfies_the_invariants_on_a_sweep() {
        let engine = Engine::new();
        let mut stream = ccs_gen::fuzz::FuzzStream::new(11);
        for case in 0..6 {
            let inst = stream.next().expect("infinite stream");
            let findings = metamorphic_check(&engine, &inst, case);
            assert!(findings.is_empty(), "case {case}: {findings:?}");
        }
    }

    #[test]
    fn registry_satisfies_the_invariants_on_shaped_instances() {
        // The moldable lane of every invariant — relabelling, scaling,
        // duplication and dominated-shape dropping — on instances that
        // actually declare menus.
        let engine = Engine::new();
        let mut stream = ccs_gen::fuzz::MoldableFuzzStream::new(17);
        let mut shaped = 0;
        for case in 0..6 {
            let inst = stream.next().expect("infinite stream");
            shaped += usize::from(inst.has_shapes());
            let findings = metamorphic_check(&engine, &inst, case);
            assert!(findings.is_empty(), "case {case}: {findings:?}");
        }
        assert!(shaped >= 2, "only {shaped}/6 instances were shaped");
    }
}

//! Certified lower bounds on the optimal makespan, computed independently of
//! every solver.
//!
//! Each bound comes with a one-line proof of soundness; the certifier and
//! the benchmark quality gate only ever use bounds from this module, so a
//! solver bug cannot vouch for itself through a shared bound computation.
//!
//! * **volume bound** `Σ_j p_j / m` — the total load must fit on `m`
//!   machines, so some machine carries at least the average (all models).
//! * **max-job bound** `p_max` — a job cannot run in parallel with itself,
//!   so the machine finishing its last piece finishes no earlier than
//!   `p_max` (preemptive and non-preemptive models only; splittable pieces
//!   *may* run in parallel).
//! * **class-packing bound** — in any schedule with makespan `T`, class `u`
//!   occupies at least `⌈P_u / T⌉` class slots (each slot-machine pair
//!   processes at most `T` of the class), and only `c·m` slots exist.  Any
//!   `T` with `Σ_u ⌈P_u / T⌉ > c·m` therefore certifies `OPT > T`.  The
//!   step function `Σ_u ⌈P_u / T⌉` only changes at the border values
//!   `P_u / k`, which is where we evaluate it.  This is sound for every
//!   model (a preemptive or non-preemptive schedule induces a splittable
//!   one of the same makespan).
//!
//! For the non-preemptive model all processing times are integral, so the
//! optimum is an integer and every fractional bound may be rounded up.
//!
//! The moldable extension model replaces the first two bounds with their
//! shape-aware analogues — the **moldable volume bound** `Σ_j min-work_j / m`
//! (a job schedules at least the smallest `machines · time` product of its
//! menu) and the **min-time bound** `max_j min-time_j` (a job runs at least
//! as long as its fastest alternative).  The class-packing bound is *not*
//! applied to moldable instances: a width-`k` shape occupies `k` class
//! slots for its own duration, so `⌈P_u / T⌉` no longer counts slot usage
//! and the bound's proof does not carry over.

use ccs_core::{Instance, Rational, ScheduleKind};

/// Per-class cap on the border values `P_u / k` the class-packing search
/// evaluates.  Partial enumeration stays sound (every violated border
/// certifies a bound; missing borders only weaken it) and keeps the
/// computation `O(cap · C²)` even when `c · m` is astronomical.
const PACKING_BORDERS_PER_CLASS: u64 = 64;

/// The certified lower bounds of an instance, as exact rationals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedBounds {
    /// Volume bound `Σ_j p_j / m` (all models).
    pub volume: Rational,
    /// Max-job bound `p_max` (preemptive / non-preemptive only).
    pub max_job: Rational,
    /// Class-packing bound: the largest evaluated border `T` with
    /// `Σ_u ⌈P_u / T⌉ > c·m` (zero when no border is violated).
    pub class_packing: Rational,
    /// Moldable volume bound `Σ_j min-work_j / m` where `min-work_j` is the
    /// smallest `machines · time` over job `j`'s shape menu (moldable model
    /// only; equals [`CertifiedBounds::volume`] on unshaped instances).
    pub moldable_volume: Rational,
    /// Moldable min-time bound `max_j min-time_j` — every job runs at least
    /// as long as its fastest shape (moldable model only; equals
    /// [`CertifiedBounds::max_job`] on unshaped instances).
    pub moldable_min_time: Rational,
}

impl CertifiedBounds {
    /// The strongest certified bound for a placement model.
    pub fn best(&self, kind: ScheduleKind) -> Rational {
        match kind {
            ScheduleKind::Splittable => self.volume.max(self.class_packing),
            ScheduleKind::Preemptive => self.volume.max(self.class_packing).max(self.max_job),
            ScheduleKind::NonPreemptive => {
                // Integral optimum: round fractional bounds up.
                let fractional = self.volume.max(self.class_packing);
                Rational::from_int(fractional.ceil()).max(self.max_job)
            }
            ScheduleKind::Moldable => {
                // Integral optimum; class packing is deliberately excluded
                // (see the module documentation).
                Rational::from_int(self.moldable_volume.ceil()).max(self.moldable_min_time)
            }
        }
    }
}

/// Computes every certified bound of `inst`.
pub fn certified_bounds(inst: &Instance) -> CertifiedBounds {
    let total: i128 = inst.processing_times().iter().map(|&p| p as i128).sum();
    let volume = Rational::new(total, inst.machines() as i128);
    let max_job = Rational::from(inst.p_max());
    let (moldable_volume, moldable_min_time) = moldable_bounds(inst);
    CertifiedBounds {
        volume,
        max_job,
        class_packing: class_packing_bound(inst),
        moldable_volume,
        moldable_min_time,
    }
}

/// The shape-aware volume and min-time bounds of the moldable model.
fn moldable_bounds(inst: &Instance) -> (Rational, Rational) {
    let mut min_work: i128 = 0;
    let mut min_time: u64 = 0;
    for job in 0..inst.num_jobs() {
        let menu = inst.shape_menu(job);
        min_work += menu
            .iter()
            .map(|&(k, t)| k as i128 * t as i128)
            .min()
            .unwrap_or(0);
        min_time = min_time.max(menu.iter().map(|&(_, t)| t).min().unwrap_or(0));
    }
    (
        Rational::new(min_work, inst.machines() as i128),
        Rational::from(min_time),
    )
}

/// The strongest certified lower bound for a model (see
/// [`CertifiedBounds::best`]).
pub fn certified_lower_bound(inst: &Instance, kind: ScheduleKind) -> Rational {
    certified_bounds(inst).best(kind)
}

/// The class-packing bound (see the module documentation for the proof).
pub fn class_packing_bound(inst: &Instance) -> Rational {
    let slots = inst.machines() as u128 * inst.class_slots() as u128;
    let mut best = Rational::ZERO;
    for u in 0..inst.num_classes() {
        let load = inst.class_load(u) as i128;
        if load == 0 {
            continue;
        }
        let borders = PACKING_BORDERS_PER_CLASS.min(slots.min(u64::MAX as u128) as u64);
        for k in 1..=borders {
            let border = Rational::new(load, k as i128);
            if border <= best {
                // Borders for growing k only shrink; later classes may
                // still contribute larger ones.
                break;
            }
            if slots_needed(inst, border) > slots {
                best = border;
                break; // larger k ⇒ smaller border ⇒ weaker bound
            }
        }
    }
    best
}

/// `Σ_u ⌈P_u / T⌉` — class slots any schedule with makespan `T` occupies.
fn slots_needed(inst: &Instance, makespan: Rational) -> u128 {
    inst.class_loads()
        .iter()
        .map(|&load| Rational::from(load).ceil_div(makespan).max(0) as u128)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn volume_and_max_job() {
        let inst = instance_from_pairs(3, 2, &[(10, 0), (20, 0), (8, 1), (4, 2)]).unwrap();
        let bounds = certified_bounds(&inst);
        assert_eq!(bounds.volume, Rational::from_int(14));
        assert_eq!(bounds.max_job, Rational::from_int(20));
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::Preemptive),
            Rational::from_int(20)
        );
        // Splittable ignores p_max but class packing bites: class 0 has
        // load 30 and 6 slots exist; T = 30/6 = 5 < 14, so volume wins.
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::Splittable),
            Rational::from_int(14)
        );
    }

    #[test]
    fn class_packing_beats_volume_when_slots_are_scarce() {
        // One machine, one slot, two classes is infeasible; use 2 machines
        // with 1 slot each and 2 classes of very unequal load: the volume
        // bound is 11, but class 0 alone needs its machine for 20.
        let inst = instance_from_pairs(2, 1, &[(20, 0), (2, 1)]).unwrap();
        let bounds = certified_bounds(&inst);
        assert_eq!(bounds.volume, Rational::from_int(11));
        // Σ ⌈P_u/T⌉ > 2 for any T < 20: at T just below 20, class 0 needs
        // 2 slots and class 1 needs 1.  The largest violated border is
        // P_0 / 1 = 20? No: at T = 20 class 0 needs 1 slot — feasible.
        // At the border T = P_0 / 2 = 10: 2 + 1 = 3 > 2 slots, violated.
        assert_eq!(bounds.class_packing, Rational::from_int(10));
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::Splittable),
            Rational::from_int(11)
        );
    }

    #[test]
    fn class_packing_dominant_case() {
        // 4 machines, 1 slot, 5 classes: only 4 slots for 5 classes is
        // infeasible — use 2 slots.  8 slots, classes with load 12 each ×4:
        // volume = 48/4 = 12; packing: T = 12/2 = 6 → 2·4 = 8 slots, fine;
        // T just below 6 needs 12 slots.  Border 12/2 = 6: ⌈12/6⌉ = 2 per
        // class → 8 = slots, not violated.  Border 12/3 = 4: 3·4 = 12 > 8 →
        // bound 4 < volume.  Volume still wins; sanity only.
        let inst = instance_from_pairs(4, 2, &[(12, 0), (12, 1), (12, 2), (12, 3)]).unwrap();
        let bounds = certified_bounds(&inst);
        assert!(bounds.class_packing <= bounds.volume);
        // A genuinely dominant packing case: 3 machines, 1 slot, 3 classes
        // of load 9, 1, 1.  Volume = 11/3; class 0 must fit in its slots:
        // every T < 9/2 forces class 0 into ≥ 3 slots, leaving none for
        // classes 1 and 2.  Border 9/2: 2 + 1 + 1 = 4 > 3 → bound 9/2.
        let inst = instance_from_pairs(3, 1, &[(9, 0), (1, 1), (1, 2)]).unwrap();
        let bounds = certified_bounds(&inst);
        assert_eq!(bounds.class_packing, Rational::new(9, 2));
        assert!(bounds.class_packing > bounds.volume);
        // Non-preemptive: max(⌈9/2⌉, p_max) = max(5, 9) = 9.
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::NonPreemptive),
            Rational::from_int(9)
        );
        // Splittable: p_max does not apply, the packing border wins.
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::Splittable),
            Rational::new(9, 2)
        );
    }

    #[test]
    fn bounds_never_exceed_any_feasible_makespan() {
        // The certified bounds must sit below the makespan of *any* feasible
        // schedule; check against every registry solver over a seed sweep.
        use ccs_engine::{Engine, SolveRequest};
        let engine = Engine::new();
        for seed in 0..12 {
            let inst = ccs_gen::tiny_random(seed);
            for kind in ccs_core::ModelSpec::all().map(|spec| spec.kind) {
                let bound = certified_lower_bound(&inst, kind);
                let sol = match engine.solve(&inst, &SolveRequest::exact(kind)) {
                    Ok(sol) => sol,
                    Err(_) => continue,
                };
                assert!(
                    bound <= sol.report.makespan,
                    "seed {seed} {kind}: certified bound {bound} exceeds optimum {}",
                    sol.report.makespan
                );
            }
        }
    }

    #[test]
    fn moldable_bounds_follow_the_cheapest_shape() {
        use ccs_core::InstanceBuilder;
        // Two machines; job 0 may run as (1, 10) or as (2, 4): its minimal
        // work is 2·4 = 8 and its minimal time is 4.  Job 1 is unshaped
        // with p = 6, contributing work 6 and time 6.
        let inst = InstanceBuilder::new(2, 2)
            .job_shaped(10, 0, &[(1, 10), (2, 4)])
            .job(6, 1)
            .build()
            .unwrap();
        let bounds = certified_bounds(&inst);
        assert_eq!(bounds.moldable_volume, Rational::new(14, 2));
        assert_eq!(bounds.moldable_min_time, Rational::from_int(6));
        // max(⌈7⌉, 6) = 7; the classic volume bound (16/2 = 8) must NOT
        // leak in — the wide shape genuinely shrinks the workload.
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::Moldable),
            Rational::from_int(7)
        );
        // Unshaped instances: the moldable bound degenerates to the classic
        // volume/max-job pair.
        let plain = instance_from_pairs(3, 2, &[(10, 0), (20, 0), (8, 1), (4, 2)]).unwrap();
        let bounds = certified_bounds(&plain);
        assert_eq!(bounds.moldable_volume, bounds.volume);
        assert_eq!(bounds.moldable_min_time, bounds.max_job);
    }

    #[test]
    fn huge_machine_counts_stay_cheap() {
        let inst = instance_from_pairs(u64::MAX / 4, 3, &[(7, 0), (9, 1)]).unwrap();
        let bounds = certified_bounds(&inst);
        assert_eq!(bounds.class_packing, Rational::ZERO);
        assert!(bounds.volume.is_positive());
        assert_eq!(
            certified_lower_bound(&inst, ScheduleKind::NonPreemptive),
            Rational::from_int(9)
        );
    }
}

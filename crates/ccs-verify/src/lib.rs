//! # ccs-verify — independent certificate checker and differential fuzz
//! subsystem
//!
//! Every solver in the workspace claims a guarantee (exact, `1 + ε`, `7/3`,
//! …), but until this crate the only check was each schedule's own
//! `validate()` — code shared with the solvers it is supposed to audit, and
//! silent about optimality gaps.  This crate is the adversarial,
//! solver-independent verification layer:
//!
//! * [`bounds`] — certified lower bounds (volume, max-job, class-packing)
//!   as exact rationals, each with a proof of soundness and no code shared
//!   with any solver,
//! * [`certifier`] — re-checks any solve report from first principles:
//!   feasibility through the independent auditor `ccs_core::audit`,
//!   makespan recomputation, bound sanity, and a guarantee audit against
//!   the certified bounds (or the true optimum when one is known),
//! * [`oracle`] — the differential oracle: runs an instance through *every*
//!   registry solver, requires exact solvers to agree bit-for-bit, approximate
//!   solvers to stay inside their certified factor, and the optima to respect
//!   every relaxation edge declared by [`ccs_core::ModelSpec`] (the paper
//!   hierarchy `OPT_s ≤ OPT_p ≤ OPT_np`, plus the unshaped
//!   moldable ≡ non-preemptive equivalence),
//! * [`metamorphic`] — relabelling, scaling, duplication and
//!   dominated-shape-dropping invariants over instances and the canonical
//!   fingerprint,
//! * [`modes`] — mode-equivalence: fast-path arithmetic on/off and
//!   parallel/serial execution must produce bit-identical solve reports,
//! * [`warm`] — warm-equivalence: warm-start hints over fuzzed session
//!   delta chains must accelerate, never steer — warm and cold solves must
//!   agree bit-for-bit on everything but work counters,
//! * [`minimize`] — a deterministic greedy shrinker that reduces any failing
//!   instance to a 1-minimal counterexample and emits it as a `ccs-wire/1`
//!   request frame,
//! * [`broken`] — an intentionally broken solver proving the subsystem
//!   catches what it is meant to catch.
//!
//! The `ccs-fuzz` binary drives all of the above over the deterministic
//! instance streams of `ccs_gen::fuzz`:
//!
//! ```text
//! cargo run --release -p ccs-verify --bin ccs-fuzz -- --seed 1 --cases 500
//! cargo run --release -p ccs-verify --bin ccs-fuzz -- --seed 1 --broken
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod broken;
pub mod certifier;
pub mod metamorphic;
pub mod minimize;
pub mod modes;
pub mod oracle;
pub mod warm;

pub use bounds::{certified_bounds, certified_lower_bound, CertifiedBounds};
pub use certifier::{certify, Certificate, Check, Verdict};
pub use metamorphic::{metamorphic_check, metamorphic_check_with};
// `minimize::minimize` is reachable through its module (re-exporting it here
// would alias the function and the module under one crate-root name, which
// rustdoc rejects).
pub use minimize::{counterexample_frame, Minimized};
pub use modes::{mode_equivalence_check, mode_equivalence_check_with, ModeReport};
pub use oracle::{
    differential_check, differential_check_with, Disagreement, OracleOptions, OracleReport,
};
pub use warm::{warm_equivalence_check, warm_equivalence_check_with, WarmReport};

use ccs_core::ScheduleKind;

/// Registry name of the (real) exact solver for a model; used when a
/// finding implicates "the exact solver of this model" rather than a solver
/// that ran.
pub(crate) fn exact_solver_name(kind: ScheduleKind) -> &'static str {
    match kind {
        ScheduleKind::Splittable => "exact-splittable",
        ScheduleKind::Preemptive => "exact-preemptive",
        ScheduleKind::NonPreemptive => "exact-nonpreemptive",
        ScheduleKind::Moldable => "exact-moldable",
    }
}

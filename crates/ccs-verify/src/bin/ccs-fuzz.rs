//! `ccs-fuzz` — the differential fuzz driver.
//!
//! Streams deterministic instances from `ccs_gen::fuzz` through the
//! differential oracle (every registry solver, cross-checked) and the
//! metamorphic invariants; any disagreement is shrunk to a 1-minimal
//! counterexample and written as a replayable `ccs-wire/1` request frame.
//!
//! ```text
//! ccs-fuzz --seed 1 --cases 500            # differential sweep, exit 1 on any finding
//! ccs-fuzz --seed 1 --broken               # self-check: a planted bug must be caught
//! ccs-fuzz --seed 7 --time-budget-secs 900 # nightly: run until the clock, not a count
//! ```
//!
//! Flags:
//! * `--seed <n>` — stream seed (default 1); `(seed, index)` names any case,
//! * `--cases <n>` — number of instances to examine (default 500),
//! * `--time-budget-secs <n>` — stop after this much wall clock, whichever
//!   of count/clock comes first (for time-boxed CI jobs),
//! * `--metamorphic-every <n>` — run the metamorphic invariants on every
//!   n-th case (default 8; `0` disables),
//! * `--modes-every <n>` — run the mode-equivalence pass (fast-path
//!   arithmetic on/off, parallel/serial — reports must be bit-identical) on
//!   every n-th case (default 8; `0` disables),
//! * `--deltas-every <n>` — run the warm-equivalence pass (a fuzzed session
//!   delta chain; warm-started solves must be bit-identical to cold solves
//!   on everything but work counters) on every n-th case (default 8; `0`
//!   disables),
//! * `--solver-budget-ms <n>` — wall-clock budget per solver run (default
//!   100; `0` removes the budget).  Budgeted-out solvers are skipped, never
//!   flagged — the accuracy-exponential schemes take whole seconds on
//!   adversarial shapes and a fuzz campaign needs breadth,
//! * `--moldable` — stream *moldable* instances (the same rotating shapes,
//!   decorated with random shape menus) so the differential lane pits the
//!   shape-selecting list scheduler against the brute-force reference on
//!   every case,
//! * `--out <dir>` — where counterexample frames are written
//!   (default `fuzz-out`),
//! * `--broken` — register the intentionally broken solver and *expect* it
//!   to be caught with a counterexample of at most 4 jobs: exit 0 when the
//!   planted bug is found and minimized, 1 otherwise.

use ccs_core::{Instance, ScheduleKind};
use ccs_engine::{Engine, SolveRequest};
use ccs_verify::broken::{engine_with_broken_solver, BROKEN_SOLVER_NAME};
use ccs_verify::minimize::minimize;
use ccs_verify::oracle::OracleOptions;
use ccs_verify::{
    counterexample_frame, differential_check_with, metamorphic_check_with,
    mode_equivalence_check_with, warm_equivalence_check_with, Disagreement,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    seed: u64,
    cases: u64,
    time_budget: Option<Duration>,
    metamorphic_every: u64,
    modes_every: u64,
    deltas_every: u64,
    oracle: OracleOptions,
    out: String,
    broken: bool,
    moldable: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 1,
            cases: 500,
            time_budget: None,
            metamorphic_every: 8,
            modes_every: 8,
            deltas_every: 8,
            oracle: OracleOptions::default(),
            out: "fuzz-out".to_string(),
            broken: false,
            moldable: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ccs-fuzz [--seed <n>] [--cases <n>] [--time-budget-secs <n>] \
         [--metamorphic-every <n>] [--modes-every <n>] [--deltas-every <n>] \
         [--solver-budget-ms <n>] [--out <dir>] [--broken] [--moldable]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        match args.next().and_then(|value| value.parse::<u64>().ok()) {
            Some(value) => value,
            None => {
                eprintln!("{flag} requires a non-negative integer");
                usage();
            }
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => options.seed = number(&mut args, "--seed"),
            "--cases" => options.cases = number(&mut args, "--cases"),
            "--time-budget-secs" => {
                options.time_budget =
                    Some(Duration::from_secs(number(&mut args, "--time-budget-secs")));
            }
            "--metamorphic-every" => {
                options.metamorphic_every = number(&mut args, "--metamorphic-every");
            }
            "--modes-every" => {
                options.modes_every = number(&mut args, "--modes-every");
            }
            "--deltas-every" => {
                options.deltas_every = number(&mut args, "--deltas-every");
            }
            "--solver-budget-ms" => {
                let millis = number(&mut args, "--solver-budget-ms");
                options.oracle.solver_budget = (millis > 0).then(|| Duration::from_millis(millis));
            }
            "--out" => match args.next() {
                Some(dir) => options.out = dir,
                None => {
                    eprintln!("--out requires a directory");
                    usage();
                }
            },
            "--broken" => options.broken = true,
            "--moldable" => options.moldable = true,
            _ => {
                eprintln!("unrecognised argument: {arg}");
                usage();
            }
        }
    }
    options
}

/// A finding together with the instance it reproduces on.
struct Finding {
    case: u64,
    instance: Instance,
    disagreement: Disagreement,
    /// The seed `metamorphic_check_with` ran under, for findings that only
    /// manifest under a transformation (`None` for differential findings).
    metamorphic_seed: Option<u64>,
    /// The seed `warm_equivalence_check_with` ran under, for findings that
    /// only manifest along a fuzzed delta chain.
    warm_seed: Option<u64>,
}

fn main() -> ExitCode {
    let options = parse_options();
    let engine = if options.broken {
        engine_with_broken_solver()
    } else {
        Engine::new()
    };
    eprintln!(
        "ccs-fuzz: seed {} · up to {} cases · {} solvers{}{}{}",
        options.seed,
        options.cases,
        engine.registry().len(),
        options
            .time_budget
            .map(|budget| format!(" · {}s budget", budget.as_secs()))
            .unwrap_or_default(),
        if options.broken {
            " · planted bug active"
        } else {
            ""
        },
        if options.moldable {
            " · moldable stream"
        } else {
            ""
        },
    );

    let started = Instant::now();
    let mut stream: Box<dyn Iterator<Item = Instance>> = if options.moldable {
        Box::new(ccs_gen::fuzz::MoldableFuzzStream::new(options.seed))
    } else {
        Box::new(ccs_gen::fuzz::FuzzStream::new(options.seed))
    };
    let mut findings: Vec<Finding> = Vec::new();
    let mut examined = 0u64;
    let mut solver_runs = 0usize;
    let mut warm_chains = 0u64;
    let mut warm_compared = 0usize;
    for case in 0..options.cases {
        if let Some(budget) = options.time_budget {
            if started.elapsed() >= budget {
                eprintln!("ccs-fuzz: time budget reached after {examined} cases");
                break;
            }
        }
        let instance = stream.next().expect("infinite stream");
        examined += 1;
        let report = differential_check_with(&engine, &instance, &options.oracle);
        solver_runs += report.solvers_run;
        for disagreement in report.disagreements {
            findings.push(Finding {
                case,
                instance: instance.clone(),
                disagreement,
                metamorphic_seed: None,
                warm_seed: None,
            });
        }
        if options.metamorphic_every > 0 && case % options.metamorphic_every == 0 {
            let seed = options.seed ^ case;
            for disagreement in metamorphic_check_with(&engine, &instance, seed, &options.oracle) {
                findings.push(Finding {
                    case,
                    instance: instance.clone(),
                    disagreement,
                    metamorphic_seed: Some(seed),
                    warm_seed: None,
                });
            }
        }
        if options.modes_every > 0 && case % options.modes_every == 0 {
            let report = mode_equivalence_check_with(&engine, &instance, &options.oracle);
            for disagreement in report.disagreements {
                findings.push(Finding {
                    case,
                    instance: instance.clone(),
                    disagreement,
                    metamorphic_seed: None,
                    warm_seed: None,
                });
            }
        }
        if options.deltas_every > 0 && case % options.deltas_every == 0 {
            let seed = options.seed ^ case;
            let report = warm_equivalence_check_with(&engine, &instance, seed, &options.oracle);
            warm_chains += 1;
            warm_compared += report.solves_compared;
            for disagreement in report.disagreements {
                findings.push(Finding {
                    case,
                    instance: instance.clone(),
                    disagreement,
                    metamorphic_seed: None,
                    warm_seed: Some(seed),
                });
            }
        }
        if options.broken && !findings.is_empty() {
            break; // the planted bug is found; move on to minimization
        }
    }

    eprintln!(
        "ccs-fuzz: examined {examined} cases ({solver_runs} solver runs{}) in {:.2}s — {} finding(s)",
        if warm_chains > 0 {
            format!(", {warm_chains} delta chains / {warm_compared} warm-cold pairs")
        } else {
            String::new()
        },
        started.elapsed().as_secs_f64(),
        findings.len()
    );

    if options.broken {
        return verdict_broken(&engine, &options, &findings);
    }
    if findings.is_empty() {
        println!(
            "OK: {examined} cases, {solver_runs} solver runs, zero disagreements (seed {})",
            options.seed
        );
        return ExitCode::SUCCESS;
    }
    report_findings(&engine, &options, &findings);
    ExitCode::FAILURE
}

/// Minimizes and writes every finding; used on real failures.
///
/// One root-cause bug typically produces several disagreements per case
/// (exact-consensus plus certifier checks) across many cases, and every
/// minimization candidate costs a full differential sweep — so findings are
/// deduplicated by `(solver, check)` before the expensive shrink, keeping
/// the earliest witness of each.
fn report_findings(engine: &Engine, options: &Options, findings: &[Finding]) {
    if let Err(error) = std::fs::create_dir_all(&options.out) {
        eprintln!("ccs-fuzz: cannot create '{}': {error}", options.out);
        return;
    }
    let mut seen: std::collections::BTreeSet<(String, String)> = Default::default();
    let mut written = 0usize;
    for finding in findings {
        eprintln!(
            "FAIL case {} (seed {}): {}",
            finding.case, options.seed, finding.disagreement
        );
        let key = (
            finding.disagreement.solver.clone(),
            finding.disagreement.check.clone(),
        );
        if !seen.insert(key) {
            continue; // same root cause already minimized
        }
        let (instance, jobs) = minimize_finding(engine, options, finding);
        let path = format!("{}/counterexample-{written}.ndjson", options.out);
        let frame = frame_for(engine, &instance, finding, written);
        eprintln!("  minimized to {jobs} job(s); wrote {path}");
        if let Err(error) = std::fs::write(&path, frame + "\n") {
            eprintln!("  cannot write '{path}': {error}");
        }
        written += 1;
    }
}

/// Shrinks a finding's instance while the same failure keeps reproducing:
/// differential findings re-run the oracle, metamorphic and warm findings
/// re-run their pass under the seed that exposed them.
fn minimize_finding(engine: &Engine, options: &Options, finding: &Finding) -> (Instance, usize) {
    let solver = finding.disagreement.solver.clone();
    if let Some(seed) = finding.warm_seed {
        let minimized = minimize(&finding.instance, |candidate| {
            warm_equivalence_check_with(engine, candidate, seed, &options.oracle)
                .disagreements
                .iter()
                .any(|disagreement| disagreement.solver == solver)
        });
        let jobs = minimized.instance.num_jobs();
        return (minimized.instance, jobs);
    }
    let is_mode_finding = finding.disagreement.check.starts_with("mode-equivalence");
    let minimized = match finding.metamorphic_seed {
        None if is_mode_finding => minimize(&finding.instance, |candidate| {
            mode_equivalence_check_with(engine, candidate, &options.oracle)
                .disagreements
                .iter()
                .any(|disagreement| disagreement.solver == solver)
        }),
        None => minimize(&finding.instance, |candidate| {
            differential_check_with(engine, candidate, &options.oracle)
                .disagreements
                .iter()
                .any(|disagreement| disagreement.solver == solver)
        }),
        Some(seed) => minimize(&finding.instance, |candidate| {
            metamorphic_check_with(engine, candidate, seed, &options.oracle)
                .iter()
                .any(|disagreement| disagreement.solver == solver)
        }),
    };
    let jobs = minimized.instance.num_jobs();
    (minimized.instance, jobs)
}

/// Builds the replayable `ccs-wire/1` frame for a minimized counterexample,
/// requesting the exact optimum of the *implicated solver's* placement model
/// (pseudo-solvers like `canonical-fingerprint` default to non-preemptive —
/// their findings are about the instance, not a schedule).
///
/// Metamorphic findings only manifest after re-applying the transform, so
/// their frame id records the metamorphic seed: feed the frame's instance
/// to `metamorphic_check_with` under that seed to reproduce.
fn frame_for(engine: &Engine, instance: &Instance, finding: &Finding, index: usize) -> String {
    let disagreement = &finding.disagreement;
    let model = engine
        .registry()
        .get(&disagreement.solver)
        .map(|solver| solver.kind())
        .unwrap_or(ScheduleKind::NonPreemptive);
    let seed_suffix = finding
        .metamorphic_seed
        .or(finding.warm_seed)
        .map(|seed| format!("-seed-{seed}"))
        .unwrap_or_default();
    counterexample_frame(
        &format!(
            "counterexample-{index}-{}-{}{seed_suffix}",
            disagreement.solver, disagreement.check
        ),
        instance,
        &SolveRequest::exact(model),
    )
}

/// `--broken` self-check: the planted bug must be caught and must minimize
/// to at most 4 jobs; any finding implicating a *real* solver is a failure.
fn verdict_broken(engine: &Engine, options: &Options, findings: &[Finding]) -> ExitCode {
    let (planted, real): (Vec<&Finding>, Vec<&Finding>) = findings
        .iter()
        .partition(|finding| finding.disagreement.solver == BROKEN_SOLVER_NAME);
    if !real.is_empty() {
        for finding in &real {
            eprintln!(
                "FAIL: real solver implicated while fuzzing the planted bug: {}",
                finding.disagreement
            );
        }
        return ExitCode::FAILURE;
    }
    let Some(finding) = planted.first() else {
        eprintln!(
            "FAIL: the planted broken solver survived {} cases undetected",
            options.cases
        );
        return ExitCode::FAILURE;
    };
    let (instance, jobs) = minimize_finding(engine, options, finding);
    let frame = frame_for(engine, &instance, finding, 0);
    if let Err(error) = std::fs::create_dir_all(&options.out) {
        eprintln!("ccs-fuzz: cannot create '{}': {error}", options.out);
        return ExitCode::FAILURE;
    }
    let path = format!("{}/broken-counterexample.ndjson", options.out);
    if let Err(error) = std::fs::write(&path, frame.clone() + "\n") {
        eprintln!("ccs-fuzz: cannot write '{path}': {error}");
        return ExitCode::FAILURE;
    }
    println!(
        "OK: planted bug caught at case {} ({}), minimized to {jobs} job(s): {frame}",
        finding.case, finding.disagreement
    );
    if jobs > 4 {
        eprintln!("FAIL: minimized counterexample still has {jobs} > 4 jobs");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

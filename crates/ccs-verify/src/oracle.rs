//! The differential oracle: cross-examines every registry solver on one
//! instance.
//!
//! For each instance the oracle runs *all* registered solvers through the
//! engine's registry and checks:
//!
//! * every report earns a clean [`Certificate`](crate::certifier::Certificate)
//!   (independent feasibility, makespan recomputation, bound sanity),
//! * all solvers claiming [`Guarantee::Exact`] for the same placement model
//!   agree **bit-for-bit** on the optimum,
//! * no solver's makespan undercuts the established optimum of its model,
//! * approximate solvers stay within their certified factor of the optimum,
//! * the optima respect the model hierarchy
//!   `OPT_splittable ≤ OPT_preemptive ≤ OPT_non-preemptive` (a schedule of a
//!   stricter model is feasible in every looser one),
//! * feasibility verdicts are consistent: on a feasible instance a solver
//!   may only fail with a size-limit error or a deadline, on an infeasible
//!   instance every solver must fail.
//!
//! Each solver runs under a wall-clock budget
//! ([`OracleOptions::solver_budget`]): the accuracy-exponential schemes take
//! whole seconds on adversarial shapes, and a fuzz campaign must spend its
//! time on breadth.  A budgeted-out solver is recorded as *skipped* — like a
//! size-limited exact solver, never as a disagreement.

use crate::certifier::{certify, Verdict};
use ccs_core::solver::SolveReport;
use ccs_core::{
    AnySchedule, CcsError, Guarantee, Instance, ModelSpec, Rational, ScheduleKind, SolveContext,
};
use ccs_engine::Engine;
use std::time::Duration;

/// Tuning of a differential examination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Wall-clock budget per solver run (`None`: unbounded).  The default is
    /// 100 ms — generous for everything but the approximation schemes on
    /// their worst shapes.
    pub solver_budget: Option<Duration>,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            solver_budget: Some(Duration::from_millis(100)),
        }
    }
}

/// One provable inconsistency found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Registry name of the solver the finding implicates.
    pub solver: String,
    /// Stable name of the violated check.
    pub check: String,
    /// Human-readable witness.
    pub detail: String,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.solver, self.check, self.detail)
    }
}

/// The outcome of one differential examination.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Everything provably wrong (empty on agreement).
    pub disagreements: Vec<Disagreement>,
    /// Solvers that ran to completion.
    pub solvers_run: usize,
    /// `(solver, reason)` pairs for solvers that sat this instance out
    /// (hard size limits, exhausted per-solver budget).
    pub skipped: Vec<(String, String)>,
}

impl OracleReport {
    /// `true` when every solver that ran agreed with every other.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

pub(crate) struct SolverRun {
    pub(crate) name: String,
    pub(crate) kind: ScheduleKind,
    pub(crate) guarantee: Guarantee,
    pub(crate) report: SolveReport<AnySchedule>,
}

/// Runs every registry solver on `inst` under the per-solver budget,
/// classifying outcomes into completed runs, skips and disagreements.
pub(crate) fn run_all_solvers(
    engine: &Engine,
    inst: &Instance,
    options: &OracleOptions,
    report: &mut OracleReport,
) -> Vec<SolverRun> {
    let feasible = inst.is_feasible();
    let mut runs = Vec::new();
    for solver in engine.registry().iter() {
        let ctx = match options.solver_budget {
            Some(budget) => SolveContext::unbounded().with_timeout(budget),
            None => SolveContext::unbounded(),
        };
        match solver.solve_any_ctx(inst, &ctx) {
            Ok(solve_report) => {
                if !feasible {
                    report.disagreements.push(Disagreement {
                        solver: solver.name().to_string(),
                        check: "feasibility-verdict".to_string(),
                        detail: format!(
                            "returned a schedule for an infeasible instance \
                             (C = {} > c·m = {})",
                            inst.num_classes(),
                            inst.class_slots().saturating_mul(inst.machines())
                        ),
                    });
                    continue;
                }
                report.solvers_run += 1;
                runs.push(SolverRun {
                    name: solver.name().to_string(),
                    kind: solver.kind(),
                    guarantee: solver.guarantee(),
                    report: solve_report,
                });
            }
            Err(CcsError::InvalidParameter(reason)) if feasible => {
                // Hard size limits of the exponential solvers.
                report.skipped.push((solver.name().to_string(), reason));
            }
            Err(CcsError::DeadlineExceeded) if feasible => {
                report.skipped.push((
                    solver.name().to_string(),
                    "per-solver budget exhausted".to_string(),
                ));
            }
            Err(error) if feasible => {
                report.disagreements.push(Disagreement {
                    solver: solver.name().to_string(),
                    check: "solve-error".to_string(),
                    detail: format!("failed on a feasible instance: {error}"),
                });
            }
            // On an infeasible instance any error verdict is accepted; the
            // error *kind* is the solver's to choose.
            Err(_) => {}
        }
    }
    runs
}

/// [`differential_check_with`] under [`OracleOptions::default`].
pub fn differential_check(engine: &Engine, inst: &Instance) -> OracleReport {
    differential_check_with(engine, inst, &OracleOptions::default())
}

/// Runs every registry solver of `engine` on `inst` and cross-checks the
/// results (see the module documentation for the full check list).
pub fn differential_check_with(
    engine: &Engine,
    inst: &Instance,
    options: &OracleOptions,
) -> OracleReport {
    let mut report = OracleReport::default();
    let runs = run_all_solvers(engine, inst, options, &mut report);

    // Establish the optimum per registered model: all exact solvers of a
    // model must agree bit-for-bit; their common value is the model's
    // ground truth.
    let mut optima: Vec<Option<Rational>> = vec![None; ModelSpec::all().count()];
    for spec in ModelSpec::all() {
        let kind = spec.kind;
        let exacts: Vec<&SolverRun> = runs
            .iter()
            .filter(|run| run.kind == kind && run.guarantee == Guarantee::Exact)
            .collect();
        let Some(first) = exacts.first() else {
            continue;
        };
        let mut agreed = true;
        for other in &exacts[1..] {
            if other.report.makespan != first.report.makespan {
                agreed = false;
                report.disagreements.push(Disagreement {
                    solver: other.name.clone(),
                    check: "exact-consensus".to_string(),
                    detail: format!(
                        "claims optimum {} for the {kind} model, '{}' claims {}",
                        other.report.makespan, first.name, first.report.makespan
                    ),
                });
            }
        }
        if agreed {
            optima[model_index(kind)] = Some(first.report.makespan);
        }
    }

    // Model hierarchy, walked over the registry's relaxation edges instead
    // of a hardcoded 3-chain: an edge `spec → relaxed` declares
    // `OPT_relaxed ≤ OPT_spec` on every instance.
    for spec in ModelSpec::all() {
        let Some(opt) = optima[model_index(spec.kind)] else {
            continue;
        };
        for &relaxed in spec.relaxations {
            let Some(relaxed_opt) = optima[model_index(relaxed)] else {
                continue;
            };
            if relaxed_opt > opt {
                report.disagreements.push(Disagreement {
                    solver: crate::exact_solver_name(relaxed).to_string(),
                    check: "model-hierarchy".to_string(),
                    detail: format!(
                        "OPT_{} {relaxed_opt} > OPT_{} {opt}",
                        ModelSpec::of(relaxed).id,
                        spec.id
                    ),
                });
            }
        }
    }

    // On unshaped instances the moldable extension *is* the non-preemptive
    // model (every default menu is the sequential shape), so their optima
    // must agree exactly — a cross-model differential check the relaxation
    // edges cannot express.
    if !inst.has_shapes() {
        if let (Some(moldable), Some(non)) = (
            optima[model_index(ScheduleKind::Moldable)],
            optima[model_index(ScheduleKind::NonPreemptive)],
        ) {
            if moldable != non {
                report.disagreements.push(Disagreement {
                    solver: crate::exact_solver_name(ScheduleKind::Moldable).to_string(),
                    check: "unshaped-moldable-equivalence".to_string(),
                    detail: format!(
                        "OPT_moldable {moldable} differs from OPT_non-preemptive {non} \
                         on an unshaped instance"
                    ),
                });
            }
        }
    }

    // Certify every report, closing the inconclusive gap with the optimum.
    for run in &runs {
        let known_opt = optima[model_index(run.kind)];
        let certificate = certify(inst, run.guarantee, &run.report, known_opt);
        for check in &certificate.checks {
            if let Verdict::Violation(detail) = &check.verdict {
                report.disagreements.push(Disagreement {
                    solver: run.name.clone(),
                    check: check.name.to_string(),
                    detail: detail.clone(),
                });
            }
        }
    }

    report
}

pub(crate) fn model_index(kind: ScheduleKind) -> usize {
    ModelSpec::all()
        .position(|spec| spec.kind == kind)
        .expect("ModelSpec::of is total, so every kind has a registry position")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn default_registry_agrees_on_small_instances() {
        let engine = Engine::new();
        for seed in 0..8 {
            let inst = ccs_gen::tiny_random(seed);
            let report = differential_check(&engine, &inst);
            assert!(report.agreed(), "seed {seed}: {:?}", report.disagreements);
            assert!(report.solvers_run >= 8, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn infeasible_instances_demand_unanimous_refusal() {
        let engine = Engine::new();
        // Three classes, two total slots.
        let inst = instance_from_pairs(2, 1, &[(1, 0), (1, 1), (1, 2)]).unwrap();
        let report = differential_check(&engine, &inst);
        assert!(report.agreed(), "{:?}", report.disagreements);
        assert_eq!(report.solvers_run, 0);
    }

    #[test]
    fn budgeted_out_solvers_are_skips_not_disagreements() {
        let engine = Engine::new();
        let inst = ccs_gen::tiny_random(3);
        let options = OracleOptions {
            solver_budget: Some(Duration::ZERO),
        };
        let report = differential_check_with(&engine, &inst, &options);
        assert!(report.agreed(), "{:?}", report.disagreements);
        assert_eq!(report.solvers_run, 0);
        assert_eq!(report.skipped.len(), engine.registry().len());
    }

    #[test]
    fn moldable_lane_agrees_on_shaped_instances() {
        // The moldable differential lane: the brute-force `exact-moldable`
        // establishes the ground truth and `moldable-list` must certify
        // against it, on instances that actually declare shape menus.
        let engine = Engine::new();
        let mut stream = ccs_gen::fuzz::MoldableFuzzStream::new(23);
        let mut shaped = 0;
        for _ in 0..16 {
            let inst = stream.next().expect("infinite stream");
            shaped += usize::from(inst.has_shapes());
            let report = differential_check(&engine, &inst);
            assert!(report.agreed(), "{:?}", report.disagreements);
        }
        assert!(shaped >= 4, "only {shaped}/16 instances were shaped");
    }

    #[test]
    fn broken_solver_is_caught() {
        let engine = crate::broken::engine_with_broken_solver();
        // Round-robin by class index puts classes 0 and 2 on machine 0:
        // load 3, while the optimum splits 2 | 1+1.
        let inst = instance_from_pairs(2, 2, &[(2, 0), (1, 1), (1, 2)]).unwrap();
        let report = differential_check(&engine, &inst);
        assert!(!report.agreed());
        assert!(
            report
                .disagreements
                .iter()
                .all(|d| d.solver == crate::broken::BROKEN_SOLVER_NAME),
            "{:?}",
            report.disagreements
        );
        assert!(report
            .disagreements
            .iter()
            .any(|d| d.check == "exact-consensus" || d.check == "guarantee"));
    }
}

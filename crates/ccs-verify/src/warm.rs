//! Warm-equivalence pass: warm-start hints must accelerate, never steer.
//!
//! A [`ccs_engine::WarmStart`] hint carries the makespan of a
//! previous solution into a new solve.  Every consumer in the workspace —
//! the exact branch-and-bound incumbent seed and the PTAS prefix-grid
//! search — comes with an argument that the hint cannot change *what* is
//! returned, only how much work finding it takes.  This pass is the
//! executable version of that argument, phrased the way the `ccs-session`
//! service actually uses hints: a fuzzed *delta chain*.
//!
//! Starting from a generated instance, a [`SessionInstance`] is mutated by
//! a deterministic chain of random deltas.  After every mutation the
//! current instance is solved twice through the engine — once cold, once
//! warm-started from the previous step's solution, exactly as the session
//! ledger would seed it — and the two solutions must agree on **payload**:
//! solver, guarantee, makespan, lower bound and schedule, bit for bit.
//! Work counters are exempt: `guesses_evaluated` is *expected* to differ
//! (that saving is the whole point of a warm start); all other counters
//! must match.  A side that runs out of its wall-clock budget skips the
//! comparison, mirroring [`crate::modes`].
//!
//! Degenerate hints (zero, far above the optimum) are thrown in on the
//! first step of every chain: a hint is advice, and bad advice must be
//! harmless.

use crate::oracle::{Disagreement, OracleOptions};
use ccs_core::{CcsError, Instance, Rational, ScheduleKind};
use ccs_engine::{Engine, Solution, SolveRequest, WarmStart};
use ccs_gen::rng::Rng;
use ccs_session::{InstanceDelta, NewJob, SessionInstance};

/// Mutation steps per delta chain.
const CHAIN_STEPS: usize = 3;

/// The outcome of one warm-equivalence examination (one delta chain).
#[derive(Debug, Clone, Default)]
pub struct WarmReport {
    /// Every observable difference between a warm and a cold solve.
    pub disagreements: Vec<Disagreement>,
    /// Warm/cold pairs that both completed and were compared.
    pub solves_compared: usize,
    /// `(solver-or-step, reason)` pairs for skipped comparisons (budget
    /// exhaustion on either side).
    pub skipped: Vec<(String, String)>,
}

impl WarmReport {
    /// `true` when no hint was observable.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// [`warm_equivalence_check_with`] under [`OracleOptions::default`].
pub fn warm_equivalence_check(engine: &Engine, inst: &Instance, seed: u64) -> WarmReport {
    warm_equivalence_check_with(engine, inst, seed, &OracleOptions::default())
}

/// Runs one fuzzed delta chain over `inst` (deterministic in `seed`) and
/// demands warm ≡ cold at every step (see the module documentation).
pub fn warm_equivalence_check_with(
    engine: &Engine,
    inst: &Instance,
    seed: u64,
    options: &OracleOptions,
) -> WarmReport {
    let mut report = WarmReport::default();
    let mut rng = Rng::seed_from_u64(seed ^ 0x5e55_10f1_dead_beef);
    let mut session = SessionInstance::from_instance(inst);
    // The ledger a real session would keep: the previous solution's
    // makespan, which seeds the next warm solve of the same chain.
    let mut previous: Option<Rational> = None;

    for step in 0..CHAIN_STEPS {
        let delta = random_delta(&mut rng, &session);
        if session.apply(&delta).is_err() {
            // A fuzzed delta can legitimately be rejected (e.g. machine
            // overflow); the session is untouched, so just move on.
            continue;
        }
        let Ok(instance) = session.materialize() else {
            continue; // the chain emptied the session
        };
        let request = request_for(&mut rng, options);

        // The hints to examine this step: the ledger seed (once one
        // exists), plus degenerate hints on the first step.
        let mut hints: Vec<Rational> = Vec::new();
        if let Some(makespan) = previous {
            hints.push(makespan);
        }
        if step == 0 {
            hints.push(Rational::ZERO);
            hints.push(Rational::from_int(1_000_000_000));
        }
        if hints.is_empty() {
            hints.push(Rational::ONE);
        }

        let cold = engine.solve(&instance, &request);
        if skip_on_deadline(&mut report, &cold, step, "cold") {
            continue;
        }
        for hint in hints {
            let warm_request = request.with_warm(WarmStart {
                parent: instance.canonical().fingerprint(),
                makespan: hint,
            });
            let warm = engine.solve(&instance, &warm_request);
            if skip_on_deadline(&mut report, &warm, step, "warm") {
                continue;
            }
            compare(&mut report, &cold, &warm, step, hint);
        }
        if let Ok(solution) = &cold {
            previous = Some(solution.report.makespan);
        }
    }
    report
}

/// One random, mostly-valid delta against the current session state.
fn random_delta(rng: &mut Rng, session: &SessionInstance) -> InstanceDelta {
    match rng.below_u32(8) {
        // Additions dominate so chains grow and stay feasible.
        0..=3 => {
            let count = rng.range_usize(1, 4);
            InstanceDelta::AddJobs(
                (0..count)
                    .map(|_| NewJob::new(rng.range_u64(1, 40), rng.below_u32(4)))
                    .collect(),
            )
        }
        4 | 5 if session.num_jobs() > 1 => {
            let jobs = session.jobs();
            let victim = jobs[rng.below_usize(jobs.len())].id;
            InstanceDelta::RemoveJobs(vec![victim])
        }
        6 if session.num_jobs() > 0 => {
            let jobs = session.jobs();
            let from = jobs[rng.below_usize(jobs.len())].class;
            InstanceDelta::RetypeClass {
                from,
                to: rng.below_u32(4),
            }
        }
        _ => InstanceDelta::AddMachines(1 + rng.below_u64(2)),
    }
}

/// A random solve request: a rotating placement model, alternating between
/// the exact tier and an `ε`-scheme (both warm-start consumers).  Moldable
/// requests stay on the exact tier — the extension has no `ε`-scheme.
fn request_for(rng: &mut Rng, options: &OracleOptions) -> SolveRequest {
    let specs: Vec<_> = ccs_core::ModelSpec::all().collect();
    let model = specs[rng.below_usize(specs.len())].kind;
    let mut request = if rng.gen_bool(0.5) || model == ScheduleKind::Moldable {
        SolveRequest::exact(model)
    } else {
        SolveRequest::epsilon(model, 0.5).expect("static epsilon is valid")
    };
    if let Some(budget) = options.solver_budget {
        request = request.with_budget(budget);
    }
    request
}

/// Records a budget-exhaustion skip.  Returns `true` when the outcome was a
/// deadline (comparison must be skipped).
fn skip_on_deadline(
    report: &mut WarmReport,
    outcome: &Result<Solution, CcsError>,
    step: usize,
    side: &str,
) -> bool {
    if matches!(outcome, Err(CcsError::DeadlineExceeded)) {
        report.skipped.push((
            format!("step {step}"),
            format!("budget exhausted on the {side} side"),
        ));
        return true;
    }
    false
}

/// Demands warm ≡ cold on everything but work counters.
fn compare(
    report: &mut WarmReport,
    cold: &Result<Solution, CcsError>,
    warm: &Result<Solution, CcsError>,
    step: usize,
    hint: Rational,
) {
    let mut diverge = |solver: &str, check: &str, detail: String| {
        report.disagreements.push(Disagreement {
            solver: solver.to_string(),
            check: format!("warm-equivalence/{check}"),
            detail: format!("step {step}, hint {hint}: {detail}"),
        });
    };
    match (cold, warm) {
        (Ok(cold), Ok(warm)) => {
            if warm.solver != cold.solver {
                diverge(
                    cold.solver,
                    "solver",
                    format!("warm routed to {} instead of {}", warm.solver, cold.solver),
                );
                return;
            }
            if warm.guarantee != cold.guarantee {
                diverge(
                    cold.solver,
                    "guarantee",
                    format!(
                        "warm reports {:?} instead of {:?}",
                        warm.guarantee, cold.guarantee
                    ),
                );
            }
            if warm.report.makespan != cold.report.makespan {
                diverge(
                    cold.solver,
                    "makespan",
                    format!(
                        "warm reports makespan {} instead of {}",
                        warm.report.makespan, cold.report.makespan
                    ),
                );
            }
            if warm.report.lower_bound != cold.report.lower_bound {
                diverge(
                    cold.solver,
                    "lower-bound",
                    format!(
                        "warm reports lower bound {} instead of {}",
                        warm.report.lower_bound, cold.report.lower_bound
                    ),
                );
            }
            if warm.report.schedule != cold.report.schedule {
                diverge(
                    cold.solver,
                    "schedule",
                    "warm constructs a different schedule".to_string(),
                );
            }
            // Counters: only the guess counter may differ — that saving is
            // the point of a warm start.
            if warm.report.stats.search_iterations != cold.report.stats.search_iterations
                || warm.report.stats.configurations != cold.report.stats.configurations
            {
                diverge(
                    cold.solver,
                    "stats",
                    format!(
                        "warm reports counters {:?} instead of {:?}",
                        warm.report.stats, cold.report.stats
                    ),
                );
            }
            report.solves_compared += 1;
        }
        (Err(cold), Err(warm)) => {
            // Refusals (infeasible, size limits) must not depend on the hint.
            if format!("{cold}") != format!("{warm}") {
                diverge(
                    "engine",
                    "error",
                    format!("cold fails with '{cold}' but warm fails with '{warm}'"),
                );
            } else {
                report.solves_compared += 1;
            }
        }
        (Ok(cold), Err(warm)) => diverge(
            cold.solver,
            "error",
            format!("cold returns a schedule but warm fails with '{warm}'"),
        ),
        (Err(cold), Ok(warm)) => diverge(
            warm.solver,
            "error",
            format!("cold fails with '{cold}' but warm returns a schedule"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzed_delta_chains_never_let_a_hint_steer() {
        let engine = Engine::new();
        let mut compared = 0;
        for seed in 0..12u64 {
            let inst = ccs_gen::tiny_random(seed);
            let report = warm_equivalence_check(&engine, &inst, seed);
            assert!(report.agreed(), "seed {seed}: {:?}", report.disagreements);
            compared += report.solves_compared;
        }
        assert!(compared >= 12, "only {compared} warm/cold pairs compared");
    }

    #[test]
    fn the_chain_is_deterministic_in_its_seed() {
        let engine = Engine::new();
        let inst = ccs_gen::tiny_random(3);
        let a = warm_equivalence_check(&engine, &inst, 7);
        let b = warm_equivalence_check(&engine, &inst, 7);
        assert_eq!(a.solves_compared, b.solves_compared);
        assert_eq!(a.skipped.len(), b.skipped.len());
    }
}

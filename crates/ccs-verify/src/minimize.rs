//! The shrinking minimizer: reduces a failing instance to a minimal
//! counterexample while the failure keeps reproducing.
//!
//! Classic greedy delta debugging specialised to CCS instances.  Each round
//! tries, in order of how much structure a single step removes:
//!
//! 1. dropping an entire class (all its jobs),
//! 2. dropping a single job,
//! 3. reducing the machine count (to 1, to `m/2`, to `m − 1`),
//! 4. reducing the class slots (to 1, to `c/2`, to `c − 1`),
//! 5. shrinking a processing time (to 1, to `p/2`).
//!
//! The first accepted reduction restarts the round; the process stops at a
//! fixpoint where no single step reproduces the failure, which makes the
//! result *1-minimal*: every job, class, machine, slot and time unit left is
//! necessary for the failure.  All candidate orders are deterministic, so a
//! given failure always minimizes to the same counterexample.
//!
//! The result is emitted as a `ccs-wire/1` request frame
//! ([`counterexample_frame`]) so a counterexample artifact can be replayed
//! byte-for-byte through `ccs-serve` or any wire-speaking harness.

use ccs_core::{Instance, InstanceBuilder};
use ccs_engine::wire::{self, WireRequest};
use ccs_engine::SolveRequest;

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The 1-minimal failing instance.
    pub instance: Instance,
    /// Number of accepted reduction steps.
    pub steps: usize,
    /// Number of candidate instances tested (accepted or not).
    pub candidates_tried: usize,
}

/// Greedily shrinks `inst` while `failing` keeps returning `true`.
///
/// `failing(&inst)` must be `true` on entry (the caller observed the
/// failure); the returned instance also satisfies it.
pub fn minimize(inst: &Instance, mut failing: impl FnMut(&Instance) -> bool) -> Minimized {
    let mut current = inst.clone();
    let mut steps = 0usize;
    let mut tried = 0usize;
    'rounds: loop {
        for candidate in candidates(&current) {
            tried += 1;
            if failing(&candidate) {
                current = candidate;
                steps += 1;
                continue 'rounds;
            }
        }
        break;
    }
    Minimized {
        instance: current,
        steps,
        candidates_tried: tried,
    }
}

/// All single-step reductions of `inst`, strongest first.
fn candidates(inst: &Instance) -> Vec<Instance> {
    let mut out = Vec::new();
    // 1. Drop a whole class.
    if inst.num_classes() > 1 {
        for class in 0..inst.num_classes() {
            push_filtered(&mut out, inst, |job| inst.class_of(job) != class);
        }
    }
    // 2. Drop a single job.
    if inst.num_jobs() > 1 {
        for victim in 0..inst.num_jobs() {
            push_filtered(&mut out, inst, |job| job != victim);
        }
    }
    // 3. Fewer machines.
    for machines in [1, inst.machines() / 2, inst.machines() - 1] {
        if machines >= 1 && machines < inst.machines() {
            push_rebuilt(&mut out, inst, machines, inst.class_slots(), |_, p| p);
        }
    }
    // 4. Fewer class slots.
    for slots in [1, inst.class_slots() / 2, inst.class_slots() - 1] {
        if slots >= 1 && slots < inst.class_slots() {
            push_rebuilt(&mut out, inst, inst.machines(), slots, |_, p| p);
        }
    }
    // 5. Shrink one processing time.
    for victim in 0..inst.num_jobs() {
        for target in [1, inst.processing_time(victim) / 2] {
            if target >= 1 && target < inst.processing_time(victim) {
                push_rebuilt(
                    &mut out,
                    inst,
                    inst.machines(),
                    inst.class_slots(),
                    |job, p| {
                        if job == victim {
                            target
                        } else {
                            p
                        }
                    },
                );
            }
        }
    }
    out
}

fn push_filtered(out: &mut Vec<Instance>, inst: &Instance, keep: impl Fn(usize) -> bool) {
    let mut builder = InstanceBuilder::new(inst.machines(), inst.class_slots());
    let mut any = false;
    for job in 0..inst.num_jobs() {
        if keep(job) {
            builder = builder.job(
                inst.processing_time(job),
                inst.class_label(inst.class_of(job)),
            );
            any = true;
        }
    }
    if any {
        if let Ok(candidate) = builder.build() {
            out.push(candidate);
        }
    }
}

fn push_rebuilt(
    out: &mut Vec<Instance>,
    inst: &Instance,
    machines: u64,
    class_slots: u64,
    time: impl Fn(usize, u64) -> u64,
) {
    let mut builder = InstanceBuilder::new(machines, class_slots);
    for job in 0..inst.num_jobs() {
        builder = builder.job(
            time(job, inst.processing_time(job)),
            inst.class_label(inst.class_of(job)),
        );
    }
    if let Ok(candidate) = builder.build() {
        out.push(candidate);
    }
}

/// Serialises a minimized counterexample as one `ccs-wire/1` request line,
/// replayable through `ccs-serve`.
pub fn counterexample_frame(id: &str, inst: &Instance, request: &SolveRequest) -> String {
    wire::request_to_line(&WireRequest {
        id: id.to_string(),
        tenant: None,
        instance: inst.clone(),
        request: *request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;
    use ccs_core::ScheduleKind;

    #[test]
    fn minimizes_to_the_failure_core() {
        // Failure predicate: "some machine must carry ≥ 2 classes", i.e.
        // C > c — irrelevant jobs, machines and big processing times all
        // melt away.
        let inst =
            instance_from_pairs(4, 1, &[(50, 0), (7, 1), (7, 1), (3, 2), (9, 3), (12, 0)]).unwrap();
        let failing =
            |candidate: &Instance| candidate.num_classes() as u64 > candidate.class_slots();
        assert!(failing(&inst));
        let minimized = minimize(&inst, failing);
        assert!(failing(&minimized.instance));
        // Two unit jobs of two classes on one machine with one slot.
        assert_eq!(minimized.instance.num_jobs(), 2);
        assert_eq!(minimized.instance.num_classes(), 2);
        assert_eq!(minimized.instance.machines(), 1);
        assert!(minimized
            .instance
            .processing_times()
            .iter()
            .all(|&p| p == 1));
        assert!(minimized.steps >= 4);
        assert!(minimized.candidates_tried >= minimized.steps);
    }

    #[test]
    fn minimization_is_deterministic() {
        let inst = instance_from_pairs(3, 1, &[(5, 0), (5, 1), (5, 2), (4, 0)]).unwrap();
        let failing =
            |candidate: &Instance| candidate.num_classes() as u64 > candidate.class_slots();
        let a = minimize(&inst, failing);
        let b = minimize(&inst, failing);
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn frame_round_trips_through_the_wire_codec() {
        let inst = instance_from_pairs(2, 1, &[(3, 0), (4, 1)]).unwrap();
        let request = SolveRequest::exact(ScheduleKind::NonPreemptive);
        let line = counterexample_frame("counterexample-1", &inst, &request);
        let back = wire::request_from_line(&line).unwrap();
        assert_eq!(back.instance, inst);
        assert_eq!(back.request, request);
        assert_eq!(back.id, "counterexample-1");
    }
}

//! End-to-end tests of the verification subsystem: the differential oracle
//! sweeps clean over the real registry, the planted bug is caught and
//! shrunk to the acceptance bound, and counterexample frames replay through
//! the wire codec.

use ccs_core::ScheduleKind;
use ccs_engine::{wire, Engine, SolveRequest};
use ccs_verify::broken::{engine_with_broken_solver, BROKEN_SOLVER_NAME};
use ccs_verify::minimize::minimize;
use ccs_verify::{certify, counterexample_frame, differential_check, metamorphic_check};

/// A miniature `ccs-fuzz --seed 1` sweep: every solver, cross-checked, with
/// metamorphic invariants sprinkled in — zero disagreements expected.
#[test]
fn fuzz_sweep_is_clean_on_the_real_registry() {
    let engine = Engine::new();
    let mut stream = ccs_gen::fuzz::FuzzStream::new(1);
    let mut runs = 0usize;
    for case in 0..40u64 {
        let inst = stream.next().expect("infinite stream");
        let report = differential_check(&engine, &inst);
        assert!(report.agreed(), "case {case}: {:?}", report.disagreements);
        runs += report.solvers_run;
        if case % 10 == 0 {
            let findings = metamorphic_check(&engine, &inst, case);
            assert!(findings.is_empty(), "case {case}: {findings:?}");
        }
    }
    assert!(runs >= 300, "sweep exercised too few solver runs: {runs}");
}

/// The acceptance scenario: a planted always-confident-but-wrong "exact"
/// solver is caught by the oracle and minimized to at most 4 jobs.
#[test]
fn planted_bug_is_caught_and_minimized_to_at_most_four_jobs() {
    let engine = engine_with_broken_solver();
    let mut stream = ccs_gen::fuzz::FuzzStream::new(1);
    let caught = (0..50)
        .filter_map(|_| stream.next())
        .find(|inst| {
            differential_check(&engine, inst)
                .disagreements
                .iter()
                .any(|d| d.solver == BROKEN_SOLVER_NAME)
        })
        .expect("the broken solver must be caught within 50 cases");

    let minimized = minimize(&caught, |candidate| {
        differential_check(&engine, candidate)
            .disagreements
            .iter()
            .any(|d| d.solver == BROKEN_SOLVER_NAME)
    });
    assert!(
        minimized.instance.num_jobs() <= 4,
        "counterexample kept {} jobs: {:?}",
        minimized.instance.num_jobs(),
        minimized.instance
    );

    // The minimized counterexample replays through the wire codec.
    let frame = counterexample_frame(
        "broken-counterexample",
        &minimized.instance,
        &SolveRequest::exact(ScheduleKind::NonPreemptive),
    );
    let replayed = wire::request_from_line(&frame).expect("frame parses");
    assert_eq!(replayed.instance, minimized.instance);
    assert!(differential_check(&engine, &replayed.instance)
        .disagreements
        .iter()
        .any(|d| d.solver == BROKEN_SOLVER_NAME));
}

/// Every engine solution earns a clean certificate — including through the
/// `validate` request flag, which runs the independent auditor.
#[test]
fn engine_solutions_certify_cleanly() {
    let engine = Engine::new();
    let mut stream = ccs_gen::fuzz::FuzzStream::new(77);
    for _ in 0..10 {
        let inst = stream.next().expect("infinite stream");
        for kind in ccs_core::ModelSpec::all().map(|spec| spec.kind) {
            let request = SolveRequest::auto(kind).with_validate(true);
            let Ok(solution) = engine.solve(&inst, &request) else {
                continue;
            };
            let certificate = certify(&inst, solution.guarantee, &solution.report, None);
            assert!(certificate.is_clean(), "{kind}: {certificate:?}");
        }
    }
}

/// Regression for the bug this subsystem found on its first run: the
/// splittable PTAS used to clamp its reported lower bound to 1, claiming a
/// bound above the true optimum on sub-unit instances.
#[test]
fn splittable_ptas_lower_bound_is_sound_below_one() {
    let engine = Engine::new();
    let inst = ccs_core::instance::instance_from_pairs(2, 1, &[(1, 0)]).unwrap();
    let solution = engine.solve_with("ptas-splittable", &inst).unwrap();
    assert_eq!(solution.report.makespan, ccs_core::Rational::new(1, 2));
    assert!(solution.report.lower_bound <= solution.report.makespan);
    let certificate = certify(&inst, solution.guarantee, &solution.report, None);
    assert!(certificate.is_clean(), "{certificate:?}");
}

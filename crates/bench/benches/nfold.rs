//! E-NF: the N-fold augmentation solver — scaling with the number of bricks N
//! (Theorem 1 promises near-linear dependence on N).  The substrate has no
//! `Solver` surface; it runs through the same harness via `bench_fn`.
use ccs_bench::{BenchOpts, Harness};
use nfold::{augmentation_solve, AugmentationOptions, NFold};
use std::process::ExitCode;

fn configuration_like(n: usize) -> NFold {
    let a = vec![vec![1, 1, 0]];
    let b = vec![vec![1, 1, -1], vec![0, 0, 1]];
    NFold::new(
        vec![a; n],
        vec![b; n],
        vec![n as i64],
        vec![vec![0, 1]; n],
        vec![0; 3 * n],
        vec![n as i64; 3 * n],
    )
    .unwrap()
}

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("nfold_augmentation", &opts);
    let sweep: &[usize] = if opts.quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    for &n in sweep {
        let nf = configuration_like(n);
        harness.bench_fn("nfold-augmentation", &format!("bricks/{n}"), || {
            augmentation_solve(&nf, AugmentationOptions::default()).unwrap();
        });
    }
    harness.finish(&opts)
}

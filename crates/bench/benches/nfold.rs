//! E-NF: the N-fold augmentation solver — scaling with the number of bricks N
//! (Theorem 1 promises near-linear dependence on N).  The substrate has no
//! `Solver` surface; it runs through the same harness via `bench_fn`.
use ccs_bench::Harness;
use nfold::{augmentation_solve, AugmentationOptions, NFold};

fn configuration_like(n: usize) -> NFold {
    let a = vec![vec![1, 1, 0]];
    let b = vec![vec![1, 1, -1], vec![0, 0, 1]];
    NFold::new(
        vec![a; n],
        vec![b; n],
        vec![n as i64],
        vec![vec![0, 1]; n],
        vec![0; 3 * n],
        vec![n as i64; 3 * n],
    )
    .unwrap()
}

fn main() {
    let harness = Harness::new("nfold_augmentation");
    for n in [2usize, 4, 8, 16, 32] {
        let nf = configuration_like(n);
        harness.bench_fn("nfold-augmentation", &format!("bricks/{n}"), || {
            augmentation_solve(&nf, AugmentationOptions::default()).unwrap();
        });
    }
}

//! E-NF: the N-fold augmentation solver — scaling with the number of bricks N
//! (Theorem 1 promises near-linear dependence on N).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfold::{augmentation_solve, AugmentationOptions, NFold};

fn configuration_like(n: usize) -> NFold {
    let a = vec![vec![1, 1, 0]];
    let b = vec![vec![1, 1, -1], vec![0, 0, 1]];
    NFold::new(
        vec![a; n],
        vec![b; n],
        vec![n as i64],
        vec![vec![0, 1]; n],
        vec![0; 3 * n],
        vec![n as i64; 3 * n],
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nfold_augmentation");
    group.sample_size(10);
    for n in [2usize, 4, 8, 16, 32] {
        let nf = configuration_like(n);
        group.bench_with_input(BenchmarkId::new("bricks", n), &nf, |b, nf| {
            b.iter(|| augmentation_solve(nf, AugmentationOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The moldable extension model: the shape-selecting list scheduler on
//! shaped instances at practitioner sizes, and both moldable solvers head
//! to head inside the brute-force reference's limits (≤ 10 jobs, ≤ 4
//! machines) — running time *and* quality ratio, directly comparable.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::Engine;
use ccs_gen::GenParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("moldable", &opts);
    let engine = Engine::new();

    // The shaped moldable family at the suite's polynomial-solver sizes.
    let n = if opts.quick { 80 } else { 200 };
    let params = GenParams::new(n, 16, 32, 3);
    let inst = ccs_gen::moldable(&params, 42);
    let case = format!("moldable/{n}");
    if let Err(e) = harness.bench_registered(&engine, "moldable-list", &case, &inst) {
        harness.skip("moldable-list", &case, &e);
    }

    // An unshaped family for contrast: every menu degenerates to the
    // sequential shape, so this doubles as the list scheduler's
    // non-preemptive-equivalent cost on classic instances.
    let plain = Family::Zipf.instance(n, 16, 32, 3, 42);
    let plain_case = format!("zipf/{n}");
    if let Err(e) = harness.bench_registered(&engine, "moldable-list", &plain_case, &plain) {
        harness.skip("moldable-list", &plain_case, &e);
    }

    // Head to head inside the exact solver's limits: the brute-force
    // reference vs the list scheduler on the same tiny shaped instance.
    let tiny = ccs_gen::tiny_moldable_random(7);
    let tiny_case = format!("tiny-moldable/{}", tiny.num_jobs());
    for solver in ["exact-moldable", "moldable-list"] {
        if let Err(e) = harness.bench_registered(&engine, solver, &tiny_case, &tiny) {
            harness.skip(solver, &tiny_case, &e);
        }
    }

    harness.finish(&opts)
}

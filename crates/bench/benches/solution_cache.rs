//! Cache-hit throughput: `Engine::solve` against a warm solution cache vs
//! the same solve uncached, plus the canonicalisation + fingerprint cost a
//! lookup pays.  The acceptance bar of the caching PR is a ≥10× speedup on
//! repeated solves of canonically identical instances; in practice the gap
//! is orders of magnitude.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_core::ScheduleKind;
use ccs_engine::{Engine, SolveRequest};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("solution_cache", &opts);
    let uncached = Engine::new();
    let cached = Engine::new().with_cache(256);
    let req = SolveRequest::auto(ScheduleKind::Splittable);

    for &n in opts.sweep() {
        let inst = Family::Uniform.instance(n, 16, 32, 3, 42);
        let case = format!("uniform/{n}");
        harness.bench_fn("solve-uncached", &case, || {
            uncached
                .solve(&inst, &req)
                .expect("uniform instances solve");
        });
        cached.solve(&inst, &req).expect("warming the cache");
        harness.bench_fn("solve-cached", &case, || {
            cached.solve(&inst, &req).expect("warm solves hit");
        });
        // A canonically equal variant (jobs reversed — a pure permutation)
        // pays the same lookup plus the schedule translation.
        let jobs: Vec<(u64, u32)> = (0..inst.num_jobs())
            .rev()
            .map(|j| (inst.processing_time(j), inst.class_label(inst.class_of(j))))
            .collect();
        let permuted =
            ccs_core::instance::instance_from_pairs(inst.machines(), inst.class_slots(), &jobs)
                .expect("permutation of a valid instance");
        harness.bench_fn("solve-cached-permuted", &case, || {
            cached.solve(&permuted, &req).expect("canonical twins hit");
        });
        // The fixed cost a miss adds on top of the solver run.
        harness.bench_fn("fingerprint", &case, || {
            std::hint::black_box(inst.fingerprint());
        });
    }

    // The headline case: an expensive exact solve vs its cached replay —
    // this is where the ≥10× acceptance bar of the caching PR is measured
    // (the polynomial solvers above are nearly as cheap as a lookup, so
    // caching them shows a smaller, size-dependent gain).
    let hard: Vec<(u64, u32)> = (0..17)
        .map(|i| (911 + 37 * i as u64, (i % 4) as u32))
        .collect();
    let hard = ccs_core::instance::instance_from_pairs(4, 2, &hard).expect("valid instance");
    let exact = SolveRequest::exact(ScheduleKind::NonPreemptive);
    harness.bench_fn("solve-uncached", "exact_np/17", || {
        uncached.solve(&hard, &exact).expect("exact solves");
    });
    cached.solve(&hard, &exact).expect("warming the cache");
    harness.bench_fn("solve-cached", "exact_np/17", || {
        cached.solve(&hard, &exact).expect("warm solves hit");
    });

    let stats = cached.cache_stats().expect("cache attached");
    println!(
        "cache stats: entries={} hits={} misses={} evictions={} hit_rate={:.4}",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate()
    );
    harness.finish(&opts)
}

//! E-T4: running time of the splittable 2-approximation (Theorem 4 claims
//! O(n² log n)); the quality side of the experiment lives in `experiments`.
use ccs_bench::{Family, SIZE_SWEEP};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_splittable");
    group.sample_size(10);
    for &n in &SIZE_SWEEP {
        let inst = Family::Uniform.instance(n, 16, 32, 3, 42);
        group.bench_with_input(BenchmarkId::new("uniform", n), &inst, |b, inst| {
            b.iter(|| ccs_approx::splittable_two_approx(inst).unwrap())
        });
    }
    // Exponential number of machines (Theorem 4, second part / E-T11).
    let inst = Family::Zipf.instance(100, 1_000_000_000_000, 16, 2, 7);
    group.bench_function("exponential_m", |b| {
        b.iter(|| ccs_approx::splittable_two_approx(&inst).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

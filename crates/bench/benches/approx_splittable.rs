//! E-T4: running time of the splittable 2-approximation (Theorem 4 claims
//! O(n² log n)); the quality side of the experiment lives in `experiments`.
use ccs_bench::{Family, Harness, SIZE_SWEEP};
use ccs_engine::Engine;

fn main() {
    let harness = Harness::new("approx_splittable");
    let engine = Engine::new();
    for &n in &SIZE_SWEEP {
        let inst = Family::Uniform.instance(n, 16, 32, 3, 42);
        harness.bench_registered(
            &engine,
            "approx-splittable-2",
            &format!("uniform/{n}"),
            &inst,
        );
    }
    // Exponential number of machines (Theorem 4, second part / E-T11).
    let inst = Family::Zipf.instance(100, 1_000_000_000_000, 16, 2, 7);
    harness.bench_registered(&engine, "approx-splittable-2", "exponential_m", &inst);
}

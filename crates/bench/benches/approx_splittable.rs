//! E-T4: running time of the splittable 2-approximation (Theorem 4 claims
//! O(n² log n)); the quality side of the experiment lives in `experiments`.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::Engine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("approx_splittable", &opts);
    let engine = Engine::new();
    for &n in opts.sweep() {
        let inst = Family::Uniform.instance(n, 16, 32, 3, 42);
        let case = format!("uniform/{n}");
        if let Err(e) = harness.bench_registered(&engine, "approx-splittable-2", &case, &inst) {
            harness.skip("approx-splittable-2", &case, &e);
        }
    }
    // The new families at a fixed size: correlated class loads and the
    // many-machines/few-classes regime (compact-encoding hot path).
    for family in [Family::Correlated, Family::ManyMachines] {
        let inst = family.instance(100, 16, 32, 3, 42);
        let case = format!("{}/100", family.name());
        if let Err(e) = harness.bench_registered(&engine, "approx-splittable-2", &case, &inst) {
            harness.skip("approx-splittable-2", &case, &e);
        }
    }
    // Exponential number of machines (Theorem 4, second part / E-T11).
    let inst = Family::Zipf.instance(100, 1_000_000_000_000, 16, 2, 7);
    if let Err(e) = harness.bench_registered(&engine, "approx-splittable-2", "exponential_m", &inst)
    {
        harness.skip("approx-splittable-2", "exponential_m", &e);
    }
    harness.finish(&opts)
}

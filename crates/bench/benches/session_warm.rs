//! Steady-state session throughput: the mutate→solve loop of a long-lived
//! `ccs-session` instance, warm-started from each step's parent solution
//! versus solved cold.
//!
//! Each bench iteration replays the same deterministic delta chain (add a
//! job, remove a job, …) against a fresh clone of the base session and
//! solves after every mutation — the traffic shape of ISSUE 8.  The `warm`
//! subject seeds every solve with the previous step's makespan exactly as
//! the session service ledger does; the `cold` subject runs the identical
//! chain with no hints.  Warm and cold return bit-identical payloads (the
//! `ccs-verify` warm-equivalence pass asserts this wholesale), so the delta
//! measured here is pure search-work savings: the PTAS skips the rejected
//! prefix of its guess grid, the exact branch-and-bound starts from an
//! already-tight incumbent.
//!
//! The ≥1.5× steady-state target of ISSUE 8 is measured on the PTAS loop
//! (`warm` vs `cold` throughput on the same case label) and recorded in the
//! committed `BENCH_baseline.json`.

use ccs_bench::{BenchOpts, Harness};
use ccs_core::{Rational, ScheduleKind};
use ccs_engine::{Engine, SolveRequest, WarmStart};
use ccs_gen::GenParams;
use ccs_session::{InstanceDelta, NewJob, SessionInstance};
use std::process::ExitCode;

/// Mutation steps per bench iteration (one steady-state window).
const STEPS: usize = 8;

/// Processing-time range shared by the base instance and every arrival:
/// session workloads churn jobs of comparable size, and a narrow spread
/// keeps the PTAS rounding grids at their steady-state size instead of
/// growing them with every delta.
const P_MIN: u64 = 50;
const P_MAX: u64 = 100;

/// The deterministic delta chain every iteration replays: an arrival
/// followed by a departure, over and over — the steady-state mix of an
/// online queue, where each step's optimum stays within a grid step of its
/// parent and the ledger hint stays tight.
fn chain(base_jobs: usize) -> Vec<InstanceDelta> {
    (0..STEPS)
        .map(|step| {
            if step % 2 == 1 {
                // Ids are dense and start at 0, so the base instance always
                // contains this victim; each departure picks its own id, so
                // the chain stays valid end to end.
                InstanceDelta::RemoveJobs(vec![(base_jobs - 1 - step / 2) as u64])
            } else {
                InstanceDelta::AddJobs(vec![NewJob::new(
                    P_MIN + (17 * step as u64) % (P_MAX - P_MIN),
                    (step / 2 % 2) as u32,
                )])
            }
        })
        .collect()
}

/// Runs the mutate→solve loop once; `warm` threads each step's makespan
/// into the next solve as a [`WarmStart`] hint.
fn run_chain(
    engine: &Engine,
    base: &SessionInstance,
    deltas: &[InstanceDelta],
    request: &SolveRequest,
    warm: bool,
) {
    let mut session = base.clone();
    let mut previous: Option<Rational> = None;
    for delta in deltas {
        session.apply(delta).expect("bench chain deltas are valid");
        let instance = session.materialize().expect("chain never empties");
        let mut request = *request;
        if warm {
            if let Some(makespan) = previous {
                request = request.with_warm(WarmStart {
                    parent: session.fingerprint(),
                    makespan,
                });
            }
        }
        let solution = engine
            .solve(&instance, &request)
            .expect("bench instances are feasible");
        previous = Some(solution.report.makespan);
    }
}

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("session_warm", &opts);
    let engine = Engine::new();

    // The PTAS loop: the warm hint starts the guess-grid search next to the
    // parent's accepted guess instead of narrowing down from the top.
    let ptas_params = GenParams::new(8, 3, 4, 2).with_times(P_MIN, P_MAX);
    let ptas_base = SessionInstance::from_instance(&ccs_gen::uniform(&ptas_params, 23));
    let ptas_request =
        SolveRequest::epsilon(ScheduleKind::NonPreemptive, 1.0).expect("static epsilon is valid");
    let ptas_chain = chain(8);
    for (label, warm) in [("warm", true), ("cold", false)] {
        harness.bench_fn(label, "ptas-np/8", || {
            run_chain(&engine, &ptas_base, &ptas_chain, &ptas_request, warm);
        });
    }

    // The exact loop: the hint seeds the branch-and-bound incumbent past
    // the greedy upper bound.
    let exact_params = GenParams::new(18, 2, 4, 2).with_times(P_MIN, P_MAX);
    let exact_base = SessionInstance::from_instance(&ccs_gen::uniform(&exact_params, 23));
    let exact_request = SolveRequest::exact(ScheduleKind::NonPreemptive);
    let exact_chain = chain(18);
    for (label, warm) in [("warm", true), ("cold", false)] {
        harness.bench_fn(label, "exact-np/18", || {
            run_chain(&engine, &exact_base, &exact_chain, &exact_request, warm);
        });
    }

    // The headline number: steady-state warm/cold throughput ratio per case
    // (median cold time over median warm time; ≥1.5 on the mutate→solve
    // loop is the ISSUE 8 target).
    for case in ["ptas-np/8", "exact-np/18"] {
        let time_of = |subject: &str| {
            harness
                .cases()
                .iter()
                .find(|c| c.solver == subject && c.case == case)
                .map(|c| c.median_ns as f64)
        };
        if let (Some(warm), Some(cold)) = (time_of("warm"), time_of("cold")) {
            if warm > 0.0 {
                println!(
                    "ratio session_warm           {case:<20} warm is {:.2}x cold",
                    cold / warm
                );
            }
        }
    }
    harness.finish(&opts)
}

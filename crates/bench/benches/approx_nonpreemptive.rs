//! E-T6: running time of the non-preemptive 7/3-approximation (Theorem 6,
//! O(n² log² n)).
use ccs_bench::{Family, Harness, SIZE_SWEEP};
use ccs_engine::Engine;

fn main() {
    let harness = Harness::new("approx_nonpreemptive");
    let engine = Engine::new();
    for &n in &SIZE_SWEEP {
        let inst = Family::VideoOnDemand.instance(n, 16, 32, 3, 42);
        harness.bench_registered(
            &engine,
            "approx-nonpreemptive-7/3",
            &format!("video_on_demand/{n}"),
            &inst,
        );
    }
}

//! E-T6: running time of the non-preemptive 7/3-approximation (Theorem 6,
//! O(n² log² n)).
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::Engine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("approx_nonpreemptive", &opts);
    let engine = Engine::new();
    for &n in opts.sweep() {
        let inst = Family::VideoOnDemand.instance(n, 16, 32, 3, 42);
        let case = format!("{}/{n}", Family::VideoOnDemand.name());
        if let Err(e) = harness.bench_registered(&engine, "approx-nonpreemptive-7/3", &case, &inst)
        {
            harness.skip("approx-nonpreemptive-7/3", &case, &e);
        }
    }
    for family in [Family::Correlated, Family::ManyMachines] {
        let inst = family.instance(100, 16, 32, 3, 42);
        let case = format!("{}/100", family.name());
        if let Err(e) = harness.bench_registered(&engine, "approx-nonpreemptive-7/3", &case, &inst)
        {
            harness.skip("approx-nonpreemptive-7/3", &case, &e);
        }
    }
    harness.finish(&opts)
}

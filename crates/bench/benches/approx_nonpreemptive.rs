//! E-T6: running time of the non-preemptive 7/3-approximation (Theorem 6,
//! O(n² log² n)).
use ccs_bench::{Family, SIZE_SWEEP};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_nonpreemptive");
    group.sample_size(10);
    for &n in &SIZE_SWEEP {
        let inst = Family::VideoOnDemand.instance(n, 16, 32, 3, 42);
        group.bench_with_input(BenchmarkId::new("video_on_demand", n), &inst, |b, inst| {
            b.iter(|| ccs_approx::nonpreemptive_73_approx(inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E-T5: running time of the preemptive 2-approximation (Theorem 5).
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::Engine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("approx_preemptive", &opts);
    let engine = Engine::new();
    for &n in opts.sweep() {
        let inst = Family::DataPlacement.instance(n, 16, 32, 3, 42);
        let case = format!("{}/{n}", Family::DataPlacement.name());
        if let Err(e) = harness.bench_registered(&engine, "approx-preemptive-2", &case, &inst) {
            harness.skip("approx-preemptive-2", &case, &e);
        }
    }
    for family in [Family::Correlated, Family::ManyMachines] {
        let inst = family.instance(100, 16, 32, 3, 42);
        let case = format!("{}/100", family.name());
        if let Err(e) = harness.bench_registered(&engine, "approx-preemptive-2", &case, &inst) {
            harness.skip("approx-preemptive-2", &case, &e);
        }
    }
    harness.finish(&opts)
}

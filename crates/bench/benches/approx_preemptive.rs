//! E-T5: running time of the preemptive 2-approximation (Theorem 5).
use ccs_bench::{Family, SIZE_SWEEP};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_preemptive");
    group.sample_size(10);
    for &n in &SIZE_SWEEP {
        let inst = Family::DataPlacement.instance(n, 16, 32, 3, 42);
        group.bench_with_input(BenchmarkId::new("data_placement", n), &inst, |b, inst| {
            b.iter(|| ccs_approx::preemptive_two_approx(inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E-T5: running time of the preemptive 2-approximation (Theorem 5).
use ccs_bench::{Family, Harness, SIZE_SWEEP};
use ccs_engine::Engine;

fn main() {
    let harness = Harness::new("approx_preemptive");
    let engine = Engine::new();
    for &n in &SIZE_SWEEP {
        let inst = Family::DataPlacement.instance(n, 16, 32, 3, 42);
        harness.bench_registered(
            &engine,
            "approx-preemptive-2",
            &format!("data_placement/{n}"),
            &inst,
        );
    }
}

//! Baseline heuristics vs the paper's algorithms (running time side): four
//! registered solvers on the same instance, throughput directly comparable.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::Engine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("baselines", &opts);
    let engine = Engine::new();
    let n = if opts.quick { 100 } else { 200 };
    for family in [Family::Zipf, Family::Correlated] {
        let inst = family.instance(n, 16, 32, 3, 5);
        let case = format!("{}/{n}", family.name());
        for solver in [
            "baseline-round-robin",
            "baseline-lpt",
            "baseline-greedy",
            "approx-nonpreemptive-7/3",
        ] {
            if let Err(e) = harness.bench_registered(&engine, solver, &case, &inst) {
                harness.skip(solver, &case, &e);
            }
        }
    }
    harness.finish(&opts)
}

//! Baseline heuristics vs the paper's algorithms (running time side): four
//! registered solvers on the same instance, throughput directly comparable.
use ccs_bench::{Family, Harness};
use ccs_engine::Engine;

fn main() {
    let harness = Harness::new("baselines");
    let engine = Engine::new();
    let inst = Family::Zipf.instance(200, 16, 32, 3, 5);
    for solver in [
        "baseline-round-robin",
        "baseline-lpt",
        "baseline-greedy",
        "approx-nonpreemptive-7/3",
    ] {
        harness.bench_registered(&engine, solver, "zipf/200", &inst);
    }
}

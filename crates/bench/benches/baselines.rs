//! Baseline heuristics vs the paper's algorithms (running time side).
use ccs_bench::Family;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let inst = Family::Zipf.instance(200, 16, 32, 3, 5);
    group.bench_function("whole_class_round_robin", |b| {
        b.iter(|| ccs_baselines::whole_class_round_robin(&inst).unwrap())
    });
    group.bench_function("whole_class_lpt", |b| {
        b.iter(|| ccs_baselines::whole_class_lpt(&inst).unwrap())
    });
    group.bench_function("greedy_first_fit", |b| {
        b.iter(|| ccs_baselines::greedy_first_fit(&inst).unwrap())
    });
    group.bench_function("nonpreemptive_73_approx", |b| {
        b.iter(|| ccs_approx::nonpreemptive_73_approx(&inst).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E-T10: the splittable PTAS — runtime growth as the accuracy 1/δ increases.
use ccs_bench::{Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{PtasParams, SplittablePtas};

fn main() {
    let harness = Harness::new("ptas_splittable");
    let inst = Family::Uniform.instance(12, 3, 5, 2, 11);
    for delta_inv in [2u64, 3, 4] {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(SplittablePtas::new(params));
        harness.bench_erased(solver.as_ref(), &format!("delta_inv/{delta_inv}"), &inst);
    }
}

//! E-T10: the splittable PTAS — runtime growth as the accuracy 1/δ increases.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{PtasParams, SplittablePtas};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("ptas_splittable", &opts);
    let inst = Family::Uniform.instance(12, 3, 5, 2, 11);
    let sweep: &[u64] = if opts.quick { &[2, 3] } else { &[2, 3, 4] };
    for &delta_inv in sweep {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(SplittablePtas::new(params));
        let case = format!("delta_inv/{delta_inv}");
        if let Err(e) = harness.bench_erased(solver.as_ref(), &case, &inst) {
            harness.skip(solver.name(), &case, &e);
        }
    }
    harness.finish(&opts)
}

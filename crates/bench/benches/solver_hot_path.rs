//! The solver hot loops under the three arithmetic/threading modes:
//! exact-rational on one thread (the pre-fast-path behaviour), the checked
//! fixed-point `Scalar` fast path on one thread, and the fast path with the
//! default intra-solve parallelism (`ccs_core::par`).
//!
//! All three modes produce bit-identical reports (the `ccs-verify`
//! mode-equivalence pass asserts this wholesale), so the deltas measured
//! here are pure arithmetic/scheduling cost: the fast path's win is skipping
//! gcd normalisation on the common-denominator hot loops, the parallel win
//! scales with the host's core count (it is zero on a one-core machine by
//! design — `par_map_ctx` degrades to the sequential loop).
//!
//! The mode is encoded in the case label (`<family>+<mode>/<n>`), so
//! baseline checks compare like against like.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_core::par::set_threads;
use ccs_core::scalar::set_fast_path;
use ccs_engine::Engine;
use std::process::ExitCode;

/// `(label, fast_path, thread_override)` — `serial-rational` is the
/// baseline the ≥2× fast-path target in ISSUE.md is measured against.
const MODES: [(&str, bool, Option<usize>); 3] = [
    ("serial-rational", false, Some(1)),
    ("fast-path", true, Some(1)),
    ("fast-path-parallel", true, None),
];

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("solver_hot_path", &opts);
    let engine = Engine::new();

    // The polynomial solvers at the standard suite shape (n = 80), the
    // accuracy/instance-exponential ones at the sizes their cost class
    // affords (matching the `experiments` suite shapes).
    let polynomial = [
        "approx-splittable-2",
        "approx-preemptive-2",
        "approx-nonpreemptive-7/3",
    ];
    let families = [Family::Uniform, Family::Zipf, Family::Correlated];
    let ptas = ["ptas-splittable", "ptas-preemptive", "ptas-nonpreemptive"];
    let exact = ["exact-splittable", "exact-nonpreemptive"];

    for (mode, fast, threads) in MODES {
        set_fast_path(fast);
        set_threads(threads);
        for family in families {
            let inst = family.instance(80, 16, 32, 3, 42);
            let case = format!("{}+{mode}/80", family.name());
            for solver in polynomial {
                if let Err(e) = harness.bench_registered(&engine, solver, &case, &inst) {
                    harness.skip(solver, &case, &e);
                }
            }
        }
        let ptas_inst = Family::Uniform.instance(10, 3, 5, 2, 11);
        let exact_inst = Family::Uniform.instance(12, 2, 3, 2, 11);
        for solver in ptas {
            let case = format!("uniform+{mode}/10");
            if let Err(e) = harness.bench_registered(&engine, solver, &case, &ptas_inst) {
                harness.skip(solver, &case, &e);
            }
        }
        for solver in exact {
            let case = format!("uniform+{mode}/12");
            if let Err(e) = harness.bench_registered(&engine, solver, &case, &exact_inst) {
                harness.skip(solver, &case, &e);
            }
        }
    }
    set_fast_path(true);
    set_threads(None);
    harness.finish(&opts)
}

//! E-T19: the preemptive PTAS — runtime growth with the accuracy.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{PreemptivePtas, PtasParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("ptas_preemptive", &opts);
    let inst = Family::Zipf.instance(10, 3, 5, 2, 17);
    let sweep: &[u64] = if opts.quick { &[2] } else { &[2, 3] };
    for &delta_inv in sweep {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(PreemptivePtas::new(params));
        let case = format!("delta_inv/{delta_inv}");
        if let Err(e) = harness.bench_erased(solver.as_ref(), &case, &inst) {
            harness.skip(solver.name(), &case, &e);
        }
    }
    harness.finish(&opts)
}

//! E-T19: the preemptive PTAS — runtime growth with the accuracy.
use ccs_bench::{Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{PreemptivePtas, PtasParams};

fn main() {
    let harness = Harness::new("ptas_preemptive");
    let inst = Family::Zipf.instance(10, 3, 5, 2, 17);
    for delta_inv in [2u64, 3] {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(PreemptivePtas::new(params));
        harness.bench_erased(solver.as_ref(), &format!("delta_inv/{delta_inv}"), &inst);
    }
}

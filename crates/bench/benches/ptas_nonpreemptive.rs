//! E-T14: the non-preemptive PTAS — runtime growth with the accuracy.
use ccs_bench::Family;
use ccs_ptas::PtasParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptas_nonpreemptive");
    group.sample_size(10);
    let inst = Family::Uniform.instance(10, 3, 5, 2, 13);
    for delta_inv in [2u64, 3] {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        group.bench_with_input(
            BenchmarkId::new("delta_inv", delta_inv),
            &params,
            |b, params| b.iter(|| ccs_ptas::nonpreemptive_ptas(&inst, *params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

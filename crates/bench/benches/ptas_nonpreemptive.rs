//! E-T14: the non-preemptive PTAS — runtime growth with the accuracy.
use ccs_bench::{BenchOpts, Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{NonpreemptivePtas, PtasParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = BenchOpts::from_env();
    let mut harness = Harness::with_opts("ptas_nonpreemptive", &opts);
    let inst = Family::Uniform.instance(10, 3, 5, 2, 13);
    let sweep: &[u64] = if opts.quick { &[2] } else { &[2, 3] };
    for &delta_inv in sweep {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(NonpreemptivePtas::new(params));
        let case = format!("delta_inv/{delta_inv}");
        if let Err(e) = harness.bench_erased(solver.as_ref(), &case, &inst) {
            harness.skip(solver.name(), &case, &e);
        }
    }
    harness.finish(&opts)
}

//! E-T14: the non-preemptive PTAS — runtime growth with the accuracy.
use ccs_bench::{Family, Harness};
use ccs_engine::erase;
use ccs_ptas::{NonpreemptivePtas, PtasParams};

fn main() {
    let harness = Harness::new("ptas_nonpreemptive");
    let inst = Family::Uniform.instance(10, 3, 5, 2, 13);
    for delta_inv in [2u64, 3] {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let solver = erase(NonpreemptivePtas::new(params));
        harness.bench_erased(solver.as_ref(), &format!("delta_inv/{delta_inv}"), &inst);
    }
}

//! Baseline comparison: diffs a fresh [`BenchReport`] against a committed
//! baseline (`BENCH_baseline.json` at the repo root) and classifies every
//! matched case as improvement, noise, or regression.
//!
//! Two axes are gated independently:
//!
//! * **time** — the median-iteration ratio `current / baseline` must stay
//!   below [`CompareConfig::max_time_ratio`]; cases whose medians both sit
//!   under the [`CompareConfig::noise_floor_ns`] are never flagged (timer
//!   noise dominates sub-100µs measurements),
//! * **quality** — the achieved approximation ratio (makespan over the
//!   instance lower bound) may not worsen by more than
//!   [`CompareConfig::quality_slack`]; this gate is machine-independent and
//!   therefore strict.
//!
//! A case present in the baseline but absent from the current run counts as
//! a failure too: silently losing coverage must force a baseline refresh.

use crate::report::{BenchCase, BenchReport};
use ccs_core::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// A case regresses when `current_median / baseline_median` meets or
    /// exceeds this factor (and improves below its reciprocal).
    pub max_time_ratio: f64,
    /// Medians both below this many nanoseconds are never compared.
    pub noise_floor_ns: u64,
    /// Allowed multiplicative worsening of the approximation ratio.
    pub quality_slack: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            max_time_ratio: 1.5,
            noise_floor_ns: 100_000,
            quality_slack: 1.10,
        }
    }
}

impl CompareConfig {
    /// The default configuration with a different time-regression factor
    /// (the `--check-ratio` flag; CI uses a generous factor because runner
    /// hardware differs from the machine that recorded the baseline).
    pub fn with_time_ratio(max_time_ratio: f64) -> Self {
        CompareConfig {
            max_time_ratio,
            ..Default::default()
        }
    }
}

/// The classification of one case key.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Median at most `1/max_time_ratio` of the baseline.
    Improvement {
        /// `baseline_median / current_median` (> 1).
        speedup: f64,
    },
    /// Inside the noise band on both axes.
    WithinNoise,
    /// Median at least `max_time_ratio` times the baseline.
    TimeRegression {
        /// `current_median / baseline_median` (> 1).
        factor: f64,
    },
    /// Approximation ratio worsened beyond the slack.
    QualityRegression {
        /// Ratio achieved by the current run.
        current: f64,
        /// Ratio recorded in the baseline.
        baseline: f64,
    },
    /// The baseline recorded a quality ratio for this case but the current
    /// run did not (a failure: the machine-independent quality gate would
    /// otherwise be silently un-gated).
    QualityLost {
        /// Ratio recorded in the baseline.
        baseline: f64,
    },
    /// Case measured now but absent from the baseline (not a failure; the
    /// next baseline refresh picks it up).
    New,
    /// Case in the baseline but not measured now, although its group ran (a
    /// failure: coverage was lost without refreshing the baseline).
    /// Baseline groups the current invocation did not run at all — a single
    /// bench target checked against the full-suite baseline — are exempt.
    Missing,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Verdict::TimeRegression { .. }
                | Verdict::QualityRegression { .. }
                | Verdict::QualityLost { .. }
                | Verdict::Missing
        )
    }
}

/// One compared case key with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseComparison {
    /// `(group, solver, case)` identity.
    pub key: (String, String, String),
    /// The classification.
    pub verdict: Verdict,
}

impl CaseComparison {
    /// `group :: solver :: case` for log lines.
    pub fn label(&self) -> String {
        format!("{} :: {} :: {}", self.key.0, self.key.1, self.key.2)
    }
}

/// The outcome of diffing a report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Every baseline-or-current case key, in sorted key order.
    pub cases: Vec<CaseComparison>,
}

impl Comparison {
    /// The failing cases (time/quality regressions and lost coverage).
    pub fn failures(&self) -> Vec<&CaseComparison> {
        self.cases
            .iter()
            .filter(|c| c.verdict.is_failure())
            .collect()
    }

    /// Whether any case fails the gate.
    pub fn has_regressions(&self) -> bool {
        self.cases.iter().any(|c| c.verdict.is_failure())
    }

    /// One-line tally, e.g. `3 improved, 40 within noise, 1 regressed`.
    pub fn summary(&self) -> String {
        let mut improved = 0usize;
        let mut noise = 0usize;
        let mut regressed = 0usize;
        let mut new = 0usize;
        let mut missing = 0usize;
        for case in &self.cases {
            match case.verdict {
                Verdict::Improvement { .. } => improved += 1,
                Verdict::WithinNoise => noise += 1,
                Verdict::TimeRegression { .. }
                | Verdict::QualityRegression { .. }
                | Verdict::QualityLost { .. } => regressed += 1,
                Verdict::New => new += 1,
                Verdict::Missing => missing += 1,
            }
        }
        format!(
            "{improved} improved, {noise} within noise, {regressed} regressed, {new} new, {missing} missing"
        )
    }
}

/// Diffs `current` against `baseline` case-by-case under `config`.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    config: &CompareConfig,
) -> Comparison {
    let current_by_key: BTreeMap<_, _> = current.cases.iter().map(|c| (c.key(), c)).collect();
    let baseline_by_key: BTreeMap<_, _> = baseline.cases.iter().map(|c| (c.key(), c)).collect();
    // The missing-coverage gate only applies to groups this invocation ran
    // (a single bench target checked against the full-suite baseline must
    // not fail over every other target's cases) and only when both runs
    // used the same measurement mode (quick and full sweeps legitimately
    // cover different case sets).
    let current_groups: BTreeSet<&str> = current.cases.iter().map(|c| c.group.as_str()).collect();
    let gate_missing = current.quick == baseline.quick;

    let mut cases = Vec::new();
    for (key, base) in &baseline_by_key {
        let verdict = match current_by_key.get(key) {
            None if gate_missing && current_groups.contains(base.group.as_str()) => {
                Verdict::Missing
            }
            None => continue,
            Some(cur) => classify(cur, base, config),
        };
        cases.push(CaseComparison {
            key: key.clone(),
            verdict,
        });
    }
    for key in current_by_key.keys() {
        if !baseline_by_key.contains_key(key) {
            cases.push(CaseComparison {
                key: key.clone(),
                verdict: Verdict::New,
            });
        }
    }
    cases.sort_by(|a, b| a.key.cmp(&b.key));
    Comparison { cases }
}

fn classify(current: &BenchCase, baseline: &BenchCase, config: &CompareConfig) -> Verdict {
    // Quality first: it is machine-independent, so a quality regression is
    // reported even when the timing side improved.
    match (current.ratio, baseline.ratio) {
        (Some(cur), Some(base)) if cur > base * config.quality_slack => {
            return Verdict::QualityRegression {
                current: cur,
                baseline: base,
            };
        }
        // The baseline gated quality here; a run that stopped measuring it
        // must not slip through on the time axis alone.
        (None, Some(base)) => return Verdict::QualityLost { baseline: base },
        _ => {}
    }

    if current.median_ns.max(baseline.median_ns) < config.noise_floor_ns {
        return Verdict::WithinNoise;
    }
    // A sub-floor baseline median is itself noise-dominated; clamping the
    // denominator to the floor keeps e.g. a 30µs->125µs jitter on a noisy
    // CI runner from reading as a 4x regression.
    let factor = current.median_ns as f64 / (baseline.median_ns.max(config.noise_floor_ns)) as f64;
    if factor >= config.max_time_ratio {
        Verdict::TimeRegression { factor }
    } else if factor <= 1.0 / config.max_time_ratio {
        Verdict::Improvement {
            speedup: 1.0 / factor,
        }
    } else {
        Verdict::WithinNoise
    }
}

/// Loads a baseline from `path` and diffs `current` against it, printing a
/// human summary to stderr.  Returns the comparison; IO/parse problems are
/// `Err` (the caller exits non-zero on both `Err` and regressions).
pub fn check_against_file(
    current: &BenchReport,
    path: impl AsRef<Path>,
    config: &CompareConfig,
) -> Result<Comparison> {
    let baseline = BenchReport::read_file(path.as_ref())?;
    if baseline.quick != current.quick {
        eprintln!(
            "warning: comparing a {} run against a {} baseline; case sets may not fully \
             overlap, so the missing-coverage gate is disabled for this check",
            mode(current.quick),
            mode(baseline.quick)
        );
    }
    let comparison = compare(current, &baseline, config);
    if comparison
        .cases
        .iter()
        .all(|c| matches!(c.verdict, Verdict::New))
    {
        eprintln!(
            "warning: no case overlaps with '{}' — nothing was gated (per-target runs only \
             compare against baselines recorded for their own group)",
            path.as_ref().display()
        );
    }
    for case in &comparison.cases {
        match &case.verdict {
            Verdict::WithinNoise => {}
            Verdict::New => eprintln!("  new        {}", case.label()),
            Verdict::Missing => eprintln!("  MISSING    {}", case.label()),
            Verdict::Improvement { speedup } => {
                eprintln!("  improved   {}  ({speedup:.2}x faster)", case.label())
            }
            Verdict::TimeRegression { factor } => {
                eprintln!("  REGRESSED  {}  ({factor:.2}x slower)", case.label())
            }
            Verdict::QualityRegression { current, baseline } => eprintln!(
                "  REGRESSED  {}  (ratio {current:.4} vs baseline {baseline:.4})",
                case.label()
            ),
            Verdict::QualityLost { baseline } => eprintln!(
                "  REGRESSED  {}  (quality ratio no longer measured; baseline {baseline:.4})",
                case.label()
            ),
        }
    }
    eprintln!(
        "baseline check vs '{}': {}",
        path.as_ref().display(),
        comparison.summary()
    );
    Ok(comparison)
}

fn mode(quick: bool) -> &'static str {
    if quick {
        "--quick"
    } else {
        "full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::tests::sample_case;

    fn report_with(cases: Vec<BenchCase>) -> BenchReport {
        let mut report = BenchReport::new(true);
        report.extend(cases);
        report
    }

    fn verdict_for<'a>(cmp: &'a Comparison, solver: &str) -> &'a Verdict {
        &cmp.cases
            .iter()
            .find(|c| c.key.1 == solver)
            .expect("case present")
            .verdict
    }

    #[test]
    fn classifies_improvement_noise_and_regression() {
        let baseline = report_with(vec![
            sample_case("steady", "uniform/100", 1_000_000),
            sample_case("faster", "uniform/100", 1_000_000),
            sample_case("slower", "uniform/100", 1_000_000),
        ]);
        let current = report_with(vec![
            sample_case("steady", "uniform/100", 1_100_000),
            sample_case("faster", "uniform/100", 400_000),
            sample_case("slower", "uniform/100", 2_000_000),
        ]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert_eq!(verdict_for(&cmp, "steady"), &Verdict::WithinNoise);
        assert!(matches!(
            verdict_for(&cmp, "faster"),
            Verdict::Improvement { speedup } if *speedup > 2.0
        ));
        assert!(matches!(
            verdict_for(&cmp, "slower"),
            Verdict::TimeRegression { factor } if (*factor - 2.0).abs() < 1e-9
        ));
        assert!(cmp.has_regressions());
        assert_eq!(cmp.failures().len(), 1);
        assert_eq!(
            cmp.summary(),
            "1 improved, 1 within noise, 1 regressed, 0 new, 0 missing"
        );
    }

    #[test]
    fn sub_noise_floor_cases_are_never_flagged() {
        let baseline = report_with(vec![sample_case("tiny", "uniform/10", 10_000)]);
        // 8x slower, but both medians are far below the 100µs floor.
        let current = report_with(vec![sample_case("tiny", "uniform/10", 80_000)]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert_eq!(verdict_for(&cmp, "tiny"), &Verdict::WithinNoise);
    }

    #[test]
    fn sub_floor_baseline_median_is_clamped_in_the_factor() {
        // Baseline 30µs (noise-dominated), current 125µs: the raw ratio is
        // 4.2x but against the clamped 100µs floor it is 1.25x — noise.
        let baseline = report_with(vec![sample_case("tiny", "uniform/10", 30_000)]);
        let current = report_with(vec![sample_case("tiny", "uniform/10", 125_000)]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert_eq!(verdict_for(&cmp, "tiny"), &Verdict::WithinNoise);
        // A genuine blow-up past the floor still trips the gate.
        let slow = report_with(vec![sample_case("tiny", "uniform/10", 1_000_000)]);
        let cmp = compare(&slow, &baseline, &CompareConfig::default());
        assert!(matches!(
            verdict_for(&cmp, "tiny"),
            Verdict::TimeRegression { factor } if (*factor - 10.0).abs() < 1e-9
        ));
    }

    #[test]
    fn quality_regression_beats_time_improvement() {
        let baseline = report_with(vec![sample_case("s", "uniform/100", 1_000_000)]);
        let mut worse = sample_case("s", "uniform/100", 200_000);
        worse.ratio = Some(1.60); // baseline records 1.25
        let current = report_with(vec![worse]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert!(matches!(
            verdict_for(&cmp, "s"),
            Verdict::QualityRegression { current, baseline }
                if (*current - 1.60).abs() < 1e-9 && (*baseline - 1.25).abs() < 1e-9
        ));
        assert!(cmp.has_regressions());
    }

    #[test]
    fn quality_within_slack_is_not_flagged() {
        let baseline = report_with(vec![sample_case("s", "uniform/100", 1_000_000)]);
        let mut slightly_worse = sample_case("s", "uniform/100", 1_000_000);
        slightly_worse.ratio = Some(1.30); // 4% over the recorded 1.25 < 10% slack
        let current = report_with(vec![slightly_worse]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert_eq!(verdict_for(&cmp, "s"), &Verdict::WithinNoise);
    }

    #[test]
    fn new_and_missing_cases() {
        let baseline = report_with(vec![
            sample_case("kept", "uniform/100", 1_000_000),
            sample_case("dropped", "uniform/100", 1_000_000),
        ]);
        let current = report_with(vec![
            sample_case("kept", "uniform/100", 1_000_000),
            sample_case("added", "uniform/100", 1_000_000),
        ]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert_eq!(verdict_for(&cmp, "added"), &Verdict::New);
        assert_eq!(verdict_for(&cmp, "dropped"), &Verdict::Missing);
        // Lost coverage gates; new coverage does not.
        assert!(cmp.has_regressions());
        assert!(!Verdict::New.is_failure());
    }

    #[test]
    fn custom_time_ratio_loosens_the_gate() {
        let baseline = report_with(vec![sample_case("s", "uniform/100", 1_000_000)]);
        let current = report_with(vec![sample_case("s", "uniform/100", 2_000_000)]);
        let loose = CompareConfig::with_time_ratio(4.0);
        assert!(!compare(&current, &baseline, &loose).has_regressions());
        let strict = CompareConfig::with_time_ratio(1.5);
        assert!(compare(&current, &baseline, &strict).has_regressions());
    }

    #[test]
    fn missing_gate_is_scoped_to_groups_that_ran() {
        // The committed baseline spans the whole suite; a single bench
        // target checking against it must not fail over other groups.
        let mut other_group = sample_case("s", "uniform/100", 1_000_000);
        other_group.group = "other".to_string();
        let baseline = report_with(vec![
            sample_case("s", "uniform/100", 1_000_000),
            other_group,
        ]);
        let current = report_with(vec![sample_case("s", "uniform/100", 1_000_000)]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert!(!cmp.has_regressions());
        assert!(cmp.cases.iter().all(|c| c.key.0 == "g"));
    }

    #[test]
    fn dropping_the_quality_measurement_fails_the_gate() {
        let baseline = report_with(vec![sample_case("s", "uniform/100", 1_000_000)]);
        let mut no_quality = sample_case("s", "uniform/100", 1_000_000);
        no_quality.makespan = None;
        no_quality.lower_bound = None;
        no_quality.ratio = None;
        let current = report_with(vec![no_quality]);
        let cmp = compare(&current, &baseline, &CompareConfig::default());
        assert!(matches!(
            verdict_for(&cmp, "s"),
            Verdict::QualityLost { baseline } if (*baseline - 1.25).abs() < 1e-9
        ));
        assert!(cmp.has_regressions());
    }
}

//! Trace-driven soak driver: the system-level macro-benchmark.
//!
//! Synthesises a deterministic request trace (`ccs_gen::trace`) and replays
//! it through both deployment shapes — in-process (`Engine::submit` +
//! inline session frames) and over real TCP through the `ccs-netd` front
//! end — recording p50/p95/p99 latency, throughput, cache hit rate,
//! warm-start hit rate and shed rate into a ccs-bench/1 report (`soak`
//! group, solvers `engine` / `netd`):
//!
//! ```text
//! cargo run --release -p ccs-bench --bin soak -- --quick --json soak.json
//! cargo run --release -p ccs-bench --bin soak -- \
//!     --quick --check BENCH_baseline.json --check-ratio 4.0
//! ```
//!
//! `--quick` replays the small CI smoke tier (`TraceParams::quick`);
//! without it the sustained tier runs (`TraceParams::sustained`, minutes).
//! Extra flags: `--seed <n>`, `--workers <n>`, `--conns <n>`,
//! `--cache <entries>`, `--no-pace` (ignore arrival timestamps, replay at
//! maximum speed), `--engine-only` / `--netd-only` (skip the other path —
//! note a baseline `--check` then fails the skipped path's cases as
//! missing coverage).

use ccs_bench::report::BenchReport;
use ccs_bench::soak::{replay_engine, replay_netd, SoakConfig, SoakOutcome};
use ccs_bench::{finish_report, BenchOpts};
use ccs_gen::trace::{Trace, TraceParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match BenchOpts::parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_solvers {
        print!(
            "{}",
            ccs_bench::render_solver_list(&ccs_engine::Engine::new())
        );
        return ExitCode::SUCCESS;
    }

    // Default seed chosen so the quick tier's chain mutations include warm
    // hits as well as misses: the baseline's warm-hit rate stays a live
    // signal instead of a structural zero.
    let mut seed = 7u64;
    let mut config = SoakConfig::default();
    let mut engine_only = false;
    let mut netd_only = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let number = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> Result<u64, String> {
            it.next()
                .and_then(|raw| raw.parse().ok())
                .ok_or_else(|| format!("{flag} requires a non-negative integer value"))
        };
        let parsed = match arg.as_str() {
            "--seed" => number(&mut it, "--seed").map(|n| seed = n),
            "--workers" => number(&mut it, "--workers").map(|n| config.workers = n.max(1) as usize),
            "--conns" => number(&mut it, "--conns").map(|n| config.conns = n.max(1) as usize),
            "--cache" => number(&mut it, "--cache").map(|n| config.cache = n as usize),
            "--no-pace" => {
                config.pace = false;
                Ok(())
            }
            "--engine-only" => {
                engine_only = true;
                Ok(())
            }
            "--netd-only" => {
                netd_only = true;
                Ok(())
            }
            other => Err(format!("unrecognised argument '{other}'")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            eprintln!(
                "usage: soak [--quick] [--json <path>] [--check <baseline>] [--check-ratio <f>] \
                 [--seed <n>] [--workers <n>] [--conns <n>] [--cache <entries>] [--no-pace] \
                 [--engine-only] [--netd-only]"
            );
            return ExitCode::from(2);
        }
    }
    if engine_only && netd_only {
        eprintln!("--engine-only and --netd-only exclude each other");
        return ExitCode::from(2);
    }

    let (tier, params) = if opts.quick {
        ("quick", TraceParams::quick())
    } else {
        ("sustained", TraceParams::sustained())
    };
    let label = format!("{tier}/{}", params.requests);
    println!(
        "== soak ({tier} tier, seed {seed}): {} events ({} pool solves, {} session frames), \
         {} workers, cache {}, {} conns, pacing {}",
        params.total_events(),
        params.requests,
        params.total_events() - params.requests,
        config.workers,
        config.cache,
        config.conns,
        if config.pace { "on" } else { "off" },
    );
    let trace = Trace::synthesize(&params, seed);

    let mut report = BenchReport::new(opts.quick);
    if !netd_only {
        let outcome = replay_engine(&trace, &config);
        print_summary("engine", &outcome);
        report.extend([outcome.to_case("engine", &label)]);
    }
    if !engine_only {
        match replay_netd(&trace, &config) {
            Ok(outcome) => {
                print_summary("netd", &outcome);
                report.extend([outcome.to_case("netd", &label)]);
            }
            Err(e) => {
                eprintln!("netd replay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    finish_report(report, &opts)
}

fn print_summary(path: &str, outcome: &SoakOutcome) {
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "soak {path:<8} p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms  {:>10.1} req/s  \
         cache {:>5.1}%  warm {:>5.1}%  shed {:>5.1}%",
        ms(outcome.percentile_ns(50)),
        ms(outcome.percentile_ns(95)),
        ms(outcome.percentile_ns(99)),
        outcome.throughput_rps(),
        outcome.counters.cache_hit_rate().unwrap_or(0.0) * 100.0,
        outcome.counters.warm_hit_rate().unwrap_or(0.0) * 100.0,
        outcome.counters.shed_rate() * 100.0,
    );
    println!("soak {path:<8} {}", outcome.counters.line());
}

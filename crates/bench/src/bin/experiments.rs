//! Reproduction harness with two modes.
//!
//! **Table mode** (default, or `--exp <id>`): prints, for every experiment
//! id of `DESIGN.md` section 5, the quality/size table the paper's theorems
//! promise.  Ids: `t4 t5 t6 l2 l3 t10 t11 t14 t19 f1 f2 f3 f4 f5 all`.
//!
//! **Suite mode** (any of `--quick`, `--json <path>`, `--check <baseline>`):
//! benches every solver in the engine registry across every generator
//! family through the structured report API, writes the JSON artifact, and
//! — with `--check` — gates time/quality regressions against a committed
//! baseline (see `BENCH_baseline.json` at the repo root and DESIGN.md §5a):
//!
//! ```text
//! cargo run --release -p ccs-bench --bin experiments -- \
//!     --quick --json bench.json --check BENCH_baseline.json
//! ```

use ccs_bench::{ratio_vs_lower_bound, BenchOpts, Family, Harness};
use ccs_core::solver::SolverCost;
use ccs_core::{Rational, Schedule, ScheduleKind};
use ccs_engine::{Engine, SolverMeta};
use ccs_ptas::PtasParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match BenchOpts::parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_solvers {
        print!("{}", ccs_bench::render_solver_list(&Engine::new()));
        return ExitCode::SUCCESS;
    }
    let mut exp: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => match it.next() {
                Some(id) => exp = Some(id.clone()),
                None => {
                    eprintln!("--exp requires an experiment id");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unrecognised argument '{other}'");
                eprintln!(
                    "usage: experiments [--exp <id>] [--quick] [--json <path>] [--check <baseline>] [--check-ratio <f>] [--list-solvers]"
                );
                return ExitCode::from(2);
            }
        }
    }

    match exp {
        Some(_) if opts != BenchOpts::default() => {
            // Table mode produces no report, so silently accepting the
            // suite flags would e.g. skip a requested baseline check.
            eprintln!("--exp (table mode) cannot be combined with --quick/--json/--check");
            ExitCode::from(2)
        }
        Some(id) => {
            run_tables(&id);
            ExitCode::SUCCESS
        }
        None if opts.quick || opts.json.is_some() || opts.check.is_some() => run_suite(&opts),
        None => {
            run_tables("all");
            ExitCode::SUCCESS
        }
    }
}

/// Suite mode: every registered solver on every generator family, sized to
/// the solver's cost class (the exact solvers carry hard instance limits,
/// the PTASes are exponential in the accuracy), collected into one report.
fn run_suite(opts: &BenchOpts) -> ExitCode {
    let engine = Engine::new();
    let mut harness = Harness::with_opts("suite", opts);
    for meta in engine.registry().metadata() {
        for family in Family::ALL {
            let (jobs, machines, classes, slots) = suite_shape(&meta, family, opts.quick);
            let inst = family.instance(jobs, machines, classes, slots, 42);
            let case = format!("{}/{jobs}", family.name());
            if let Err(e) = harness.bench_registered(&engine, meta.name, &case, &inst) {
                harness.skip(meta.name, &case, &e);
            }
        }
    }
    harness.finish(opts)
}

/// Instance shape `(jobs, machines, classes, slots)` for one suite cell.
fn suite_shape(meta: &SolverMeta, family: Family, quick: bool) -> (usize, u64, u32, u64) {
    if family == Family::ManyMachines && meta.cost != SolverCost::Polynomial {
        // The family multiplies the machine count by 4, while the exact
        // solvers enforce hard limits (≤ 4 machines for the flow-based
        // ones) and the default-accuracy splittable PTAS blows past 10s
        // from 8 machines up on few-classes instances; one job (4
        // machines, still m = 4n) keeps the cell representative and fast.
        return (1, 1, 2, 2);
    }
    match meta.cost {
        SolverCost::InstanceExponential => (6, 2, 3, 2),
        SolverCost::AccuracyExponential => (if quick { 8 } else { 10 }, 3, 5, 2),
        SolverCost::Polynomial => (if quick { 80 } else { 200 }, 16, 32, 3),
    }
}

/// Table mode: the `--exp` reproduction tables.
fn run_tables(exp: &str) {
    let run = |id: &str| exp == "all" || exp == id;

    if run("t4") {
        quality_table(
            "E-T4  splittable 2-approx (Thm 4)",
            ScheduleKind::Splittable,
            |inst| {
                let r = ccs_approx::splittable_two_approx(inst).unwrap();
                (r.schedule.makespan(inst), r.search_iterations)
            },
        );
    }
    if run("t5") {
        quality_table(
            "E-T5  preemptive 2-approx (Thm 5)",
            ScheduleKind::Preemptive,
            |inst| {
                let r = ccs_approx::preemptive_two_approx(inst).unwrap();
                (r.schedule.makespan(inst), r.search_iterations)
            },
        );
    }
    if run("t6") {
        quality_table(
            "E-T6  non-preemptive 7/3-approx (Thm 6)",
            ScheduleKind::NonPreemptive,
            |inst| {
                let r = ccs_approx::nonpreemptive_73_approx(inst).unwrap();
                (r.schedule.makespan(inst), r.search_iterations)
            },
        );
    }
    if run("l2") {
        exp_l2();
    }
    if run("l3") {
        exp_l3();
    }
    if run("t10") || run("t14") || run("t19") {
        exp_ptas(exp);
    }
    if run("t11") {
        exp_t11();
    }
    if run("f1") || run("f2") {
        exp_figures_1_2();
    }
    if run("f3") {
        exp_f3();
    }
    if run("f4") {
        exp_f4();
    }
    if run("f5") {
        exp_f5();
    }
}

/// Quality of a constant-factor algorithm over the four workload families.
fn quality_table<F>(title: &str, kind: ScheduleKind, mut algo: F)
where
    F: FnMut(&ccs_core::Instance) -> (Rational, usize),
{
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>6} {:>10} {:>12} {:>10}",
        "family", "n", "makespan", "ratio_vs_LB", "iters"
    );
    for family in Family::ALL {
        for &n in &[100usize, 400] {
            let inst = family.instance(n, 16, 32, 3, 42);
            let (mk, iters) = algo(&inst);
            let lb = ccs_exact::strong_lower_bound(&inst, kind).max(Rational::ONE);
            println!(
                "{:<16} {:>6} {:>10.1} {:>12.3} {:>10}",
                family.name(),
                n,
                mk.to_f64(),
                (mk / lb).to_f64(),
                iters
            );
        }
    }
}

/// E-L2: border-search iterations grow with log m, not m.
fn exp_l2() {
    println!("\n== E-L2  advanced binary search (Lemma 2): iterations vs m ==");
    println!("{:>16} {:>12}", "machines", "iterations");
    for &m in &[16u64, 1 << 10, 1 << 20, 1 << 40] {
        let inst = Family::Uniform.instance(200, m, 32, 3, 3);
        let r = ccs_approx::splittable_two_approx(&inst).unwrap();
        println!("{:>16} {:>12}", m, r.search_iterations);
    }
}

/// E-L3: the round-robin load bound of Lemma 3.
fn exp_l3() {
    println!("\n== E-L3  round robin load bound (Lemma 3) ==");
    println!(
        "{:>6} {:>6} {:>12} {:>12}",
        "items", "m", "max_load", "bound"
    );
    for &(items, m) in &[(50usize, 7u64), (200, 16), (1000, 32)] {
        let weights: Vec<Rational> = (0..items)
            .map(|i| Rational::from(1 + ((i * 7919) % 100) as u64))
            .collect();
        let assignment = ccs_approx::round_robin::round_robin_by_weight(&weights, m);
        let loads = ccs_approx::round_robin::machine_loads(&weights, &assignment, m);
        let bound = ccs_approx::round_robin::lemma3_bound(&weights, m);
        let max = loads.into_iter().fold(Rational::ZERO, Rational::max);
        println!(
            "{:>6} {:>6} {:>12.1} {:>12.1}",
            items,
            m,
            max.to_f64(),
            bound.to_f64()
        );
    }
}

/// E-T10 / E-T14 / E-T19: PTAS quality vs the exact optimum and the constant
/// approximations on small instances, as the accuracy increases.
fn exp_ptas(which: &str) {
    println!("\n== E-T10/T14/T19  PTAS quality vs exact optimum (small instances) ==");
    println!(
        "{:<14} {:>9} {:>8} {:>10} {:>10} {:>10}",
        "case", "delta_inv", "opt", "ptas", "2/7-3appr", "ratio"
    );
    for seed in [1u64, 2, 3] {
        let inst = ccs_gen::tiny_random(seed);
        if !inst.is_feasible() {
            continue;
        }
        for delta_inv in [2u64, 4] {
            let params = PtasParams::with_delta_inv(delta_inv).unwrap();
            if which == "all" || which == "t10" {
                if let (Ok(opt), Ok(ptas), Ok(approx)) = (
                    ccs_exact::splittable_optimum(&inst),
                    ccs_ptas::splittable_ptas(&inst, params),
                    ccs_approx::splittable_two_approx(&inst),
                ) {
                    row(
                        "splittable",
                        delta_inv,
                        opt,
                        ptas.schedule.makespan(&inst),
                        approx.schedule.makespan(&inst),
                    );
                }
            }
            if which == "all" || which == "t14" {
                if let (Ok(opt), Ok(ptas), Ok(approx)) = (
                    ccs_exact::nonpreemptive_optimum(&inst),
                    ccs_ptas::nonpreemptive_ptas(&inst, params),
                    ccs_approx::nonpreemptive_73_approx(&inst),
                ) {
                    row(
                        "non-preemptive",
                        delta_inv,
                        Rational::from(opt),
                        ptas.schedule.makespan(&inst),
                        approx.schedule.makespan(&inst),
                    );
                }
            }
            if which == "all" || which == "t19" {
                if let (Ok(opt), Ok(ptas), Ok(approx)) = (
                    ccs_exact::preemptive_optimum(&inst),
                    ccs_ptas::preemptive_ptas(&inst, params),
                    ccs_approx::preemptive_two_approx(&inst),
                ) {
                    row(
                        "preemptive",
                        delta_inv,
                        opt,
                        ptas.schedule.makespan(&inst),
                        approx.schedule.makespan(&inst),
                    );
                }
            }
        }
    }

    fn row(case: &str, delta_inv: u64, opt: Rational, ptas: Rational, approx: Rational) {
        println!(
            "{:<14} {:>9} {:>8.2} {:>10.2} {:>10.2} {:>10.3}",
            case,
            delta_inv,
            opt.to_f64(),
            ptas.to_f64(),
            approx.to_f64(),
            ptas.to_f64() / opt.to_f64().max(1e-9)
        );
    }
}

/// E-T11: an exponential number of machines — compact output of the
/// splittable algorithm (Theorem 4 second part / Theorem 11).
fn exp_t11() {
    println!("\n== E-T11  exponential number of machines (compact output) ==");
    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "machines", "makespan", "ratio_vs_LB", "encoding"
    );
    for &m in &[1_000_000u64, 1_000_000_000, 1_000_000_000_000] {
        let inst = Family::Zipf.instance(100, m, 16, 2, 7);
        let r = ccs_approx::splittable_two_approx(&inst).unwrap();
        let ratio = ratio_vs_lower_bound(&inst, &r.schedule, ScheduleKind::Splittable);
        println!(
            "{:>16} {:>14.6} {:>14.3} {:>10}",
            m,
            r.schedule.makespan(&inst).to_f64(),
            ratio,
            r.schedule.encoding_size()
        );
    }
}

/// F-1 / F-2: the round-robin schedule of Figure 1 and its preemptive
/// repacking (Figure 2), printed as ASCII Gantt charts.
fn exp_figures_1_2() {
    println!("\n== F-1/F-2  Figures 1 and 2: round robin and repacking ==");
    // Ten classes with decreasing loads on four machines, as in the figure.
    let jobs: Vec<(u64, u32)> = (0..10).map(|i| (10 - i as u64, i as u32)).collect();
    let inst = ccs_core::instance::instance_from_pairs(4, 3, &jobs).unwrap();
    let split = ccs_approx::splittable_two_approx(&inst).unwrap();
    println!(
        "splittable round robin, makespan {}",
        split.schedule.makespan(&inst)
    );
    for machine in 0..4u64 {
        let load = split.schedule.load_of_machine(machine);
        let classes = split.schedule.classes_on_machine(&inst, machine);
        println!(
            "  machine {machine}: load {:<6} classes {:?}",
            load.to_f64(),
            classes
        );
    }
    let pre = ccs_approx::preemptive_two_approx(&inst).unwrap();
    println!(
        "preemptive repacking, makespan {}",
        pre.schedule.makespan(&inst)
    );
    for (i, pieces) in pre.schedule.machines().iter().enumerate() {
        let mut desc: Vec<String> = pieces
            .iter()
            .map(|p| format!("j{}[{}..{})", p.job, p.start.to_f64(), p.end().to_f64()))
            .collect();
        desc.sort();
        println!("  machine {i}: {}", desc.join(" "));
    }
}

/// F-3: the class-pair swap that bounds the number of non-trivial machines
/// when m is exponential (Figure 3) — demonstrated via the compact encoding.
fn exp_f3() {
    println!("\n== F-3  exponential m: compact encoding sizes ==");
    let inst = Family::Uniform.instance(60, 1 << 40, 12, 2, 9);
    let r = ccs_approx::splittable_two_approx(&inst).unwrap();
    println!(
        "n = {}, m = 2^40: schedule encoded with {} explicit pieces / runs (polynomial in n)",
        inst.num_jobs(),
        r.schedule.encoding_size()
    );
}

/// F-4: dissolving a configuration into modules and jobs.
fn exp_f4() {
    println!("\n== F-4  configuration -> modules -> jobs (non-preemptive PTAS) ==");
    let inst =
        ccs_core::instance::instance_from_pairs(2, 2, &[(6, 0), (5, 0), (4, 1), (3, 1), (1, 2)])
            .unwrap();
    let params = PtasParams::with_delta_inv(2).unwrap();
    let res = ccs_ptas::nonpreemptive_ptas(&inst, params).unwrap();
    println!(
        "accepted guess {}, makespan {}",
        res.guess,
        res.schedule.makespan_int(&inst)
    );
    for (machine, jobs) in res.schedule.machine_contents() {
        let desc: Vec<String> = jobs
            .iter()
            .map(|&j| format!("j{j}(p={},c={})", inst.processing_time(j), inst.class_of(j)))
            .collect();
        println!("  machine {machine}: {}", desc.join(" "));
    }
}

/// F-5: the layer-assignment flow network of Lemma 16.
fn exp_f5() {
    println!("\n== F-5  layer-assignment flow network (Lemma 16) ==");
    let requests = vec![
        flownet::LayerRequest {
            units: 2,
            allowed_machines: vec![0, 1],
        },
        flownet::LayerRequest {
            units: 1,
            allowed_machines: vec![0],
        },
        flownet::LayerRequest {
            units: 2,
            allowed_machines: vec![1],
        },
    ];
    let caps = vec![3, 2];
    match flownet::layer_assignment(&requests, &caps, 3) {
        Some(assignment) => {
            println!(
                "integral assignment found ({} slots):",
                assignment.placements.len()
            );
            for (job, machine, layer) in assignment.placements {
                println!("  job {job} -> machine {machine}, layer {layer}");
            }
        }
        None => println!("no assignment (unexpected for this example)"),
    }
}

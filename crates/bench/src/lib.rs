//! # ccs-bench — the workspace's measurement subsystem
//!
//! The bench targets and the `experiments` binary reproduce every
//! table/figure-equivalent artefact of the paper (see `DESIGN.md`, section
//! 5) *and* feed the perf-regression gate in CI.  This library provides:
//!
//! * [`harness`] — the shared timing loop, quality capture and the
//!   `--json/--check/--quick` CLI surface ([`Harness`], [`BenchOpts`]),
//! * [`report`] — the JSON artifact schema ([`BenchReport`], [`BenchCase`]),
//! * [`baseline`] — the comparator that diffs a run against the committed
//!   `BENCH_baseline.json` and flags time/quality regressions,
//! * [`soak`] — the trace-driven macro replay (`soak` bin): a
//!   `ccs_gen::trace` request stream through the whole service stack,
//!   in-process and over TCP, with latency-percentile/throughput cases,
//! * [`Family`] — the workload families every experiment sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod harness;
pub mod report;
pub mod soak;

pub use baseline::{compare, CompareConfig, Comparison, Verdict};
pub use harness::{finish_report, render_solver_list, BenchOpts, Harness};
pub use report::{BenchCase, BenchReport};

use ccs_core::{Instance, Rational, Schedule, ScheduleKind};
use ccs_gen::GenParams;

/// The standard workload families exercised by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform processing times and classes.
    Uniform,
    /// Zipf-distributed class popularity.
    Zipf,
    /// Data-placement scenario (paper introduction).
    DataPlacement,
    /// Video-on-demand scenario.
    VideoOnDemand,
    /// Class-correlated processing times (a class fixes a base duration).
    Correlated,
    /// Far more machines than jobs, only a handful of classes.
    ManyMachines,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 6] = [
        Family::Uniform,
        Family::Zipf,
        Family::DataPlacement,
        Family::VideoOnDemand,
        Family::Correlated,
        Family::ManyMachines,
    ];

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Zipf => "zipf",
            Family::DataPlacement => "data-placement",
            Family::VideoOnDemand => "video-on-demand",
            Family::Correlated => "correlated",
            Family::ManyMachines => "many-machines",
        }
    }

    /// Generates an instance of this family.
    pub fn instance(
        &self,
        jobs: usize,
        machines: u64,
        classes: u32,
        slots: u64,
        seed: u64,
    ) -> Instance {
        let params = GenParams::new(jobs, machines, classes, slots);
        match self {
            Family::Uniform => ccs_gen::uniform(&params, seed),
            Family::Zipf => ccs_gen::zipf_classes(&params, seed),
            Family::DataPlacement => ccs_gen::data_placement(&params, seed),
            Family::VideoOnDemand => ccs_gen::video_on_demand(&params, seed),
            Family::Correlated => ccs_gen::correlated(&params, seed),
            Family::ManyMachines => ccs_gen::many_machines(&params, seed),
        }
    }
}

/// The measured quality of a schedule: makespan divided by the best known
/// lower bound on the optimum (an upper bound on the true approximation
/// ratio).
pub fn ratio_vs_lower_bound<S: Schedule>(inst: &Instance, schedule: &S, kind: ScheduleKind) -> f64 {
    let lb = ccs_exact::strong_lower_bound(inst, kind).max(Rational::ONE);
    (schedule.makespan(inst) / lb).to_f64()
}

/// A standard size sweep used by the running-time experiments.
pub const SIZE_SWEEP: [usize; 4] = [50, 100, 200, 400];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_feasible_instances() {
        for family in Family::ALL {
            let inst = family.instance(40, 5, 10, 3, 7);
            assert!(inst.is_feasible(), "{}", family.name());
        }
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<_> = Family::ALL.iter().map(Family::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn ratio_helper_at_least_one() {
        let inst = Family::Uniform.instance(30, 4, 8, 2, 1);
        let res = ccs_approx::splittable_two_approx(&inst).unwrap();
        let ratio = ratio_vs_lower_bound(&inst, &res.schedule, ScheduleKind::Splittable);
        assert!((1.0..=2.0001).contains(&ratio));
    }
}

//! # ccs-bench — shared helpers for the benchmark harness
//!
//! The Criterion benches and the `experiments` binary reproduce every
//! table/figure-equivalent artefact of the paper (see `DESIGN.md`, section 5
//! and `EXPERIMENTS.md` for the recorded results).  This library provides the
//! common workloads and quality metrics they use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::Harness;

use ccs_core::{Instance, Rational, Schedule, ScheduleKind};
use ccs_gen::GenParams;

/// The standard workload families exercised by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform processing times and classes.
    Uniform,
    /// Zipf-distributed class popularity.
    Zipf,
    /// Data-placement scenario (paper introduction).
    DataPlacement,
    /// Video-on-demand scenario.
    VideoOnDemand,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 4] = [
        Family::Uniform,
        Family::Zipf,
        Family::DataPlacement,
        Family::VideoOnDemand,
    ];

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Zipf => "zipf",
            Family::DataPlacement => "data-placement",
            Family::VideoOnDemand => "video-on-demand",
        }
    }

    /// Generates an instance of this family.
    pub fn instance(
        &self,
        jobs: usize,
        machines: u64,
        classes: u32,
        slots: u64,
        seed: u64,
    ) -> Instance {
        let params = GenParams::new(jobs, machines, classes, slots);
        match self {
            Family::Uniform => ccs_gen::uniform(&params, seed),
            Family::Zipf => ccs_gen::zipf_classes(&params, seed),
            Family::DataPlacement => ccs_gen::data_placement(&params, seed),
            Family::VideoOnDemand => ccs_gen::video_on_demand(&params, seed),
        }
    }
}

/// The measured quality of a schedule: makespan divided by the best known
/// lower bound on the optimum (an upper bound on the true approximation
/// ratio).
pub fn ratio_vs_lower_bound<S: Schedule>(inst: &Instance, schedule: &S, kind: ScheduleKind) -> f64 {
    let lb = ccs_exact::strong_lower_bound(inst, kind).max(Rational::ONE);
    (schedule.makespan(inst) / lb).to_f64()
}

/// A standard size sweep used by the running-time experiments.
pub const SIZE_SWEEP: [usize; 4] = [50, 100, 200, 400];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_feasible_instances() {
        for family in Family::ALL {
            let inst = family.instance(40, 5, 10, 3, 7);
            assert!(inst.is_feasible(), "{}", family.name());
        }
    }

    #[test]
    fn ratio_helper_at_least_one() {
        let inst = Family::Uniform.instance(30, 4, 8, 2, 1);
        let res = ccs_approx::splittable_two_approx(&inst).unwrap();
        let ratio = ratio_vs_lower_bound(&inst, &res.schedule, ScheduleKind::Splittable);
        assert!((1.0..=2.0001).contains(&ratio));
    }
}

//! The workspace's benchmark harness.
//!
//! Criterion is unavailable in this offline build environment, so every
//! bench target opts out of the default libtest harness (`harness = false`
//! in `Cargo.toml`) and drives this module instead.  All benches go through
//! the same timing loop and — where the subject is a scheduling algorithm —
//! through the engine's solver registry, so the emitted per-solver numbers
//! are directly comparable across benches.
//!
//! Beyond printing human-readable throughput lines, the harness records a
//! [`BenchCase`] per measurement (warmup, iteration count, min/median/p95,
//! and the achieved-makespan/lower-bound quality pair for solver subjects).
//! [`Harness::finish`] turns the recordings into a [`BenchReport`], honours
//! the shared CLI surface ([`BenchOpts`]: `--json <path>`,
//! `--check <baseline>`, `--check-ratio <f>`, `--quick`), and exits non-zero
//! when a baseline check finds a regression:
//!
//! ```text
//! cargo bench -p ccs-bench --bench baselines -- --quick --json baselines.json
//! cargo bench -p ccs-bench --bench baselines -- --quick --check baselines.json
//! ```
//!
//! Cases are matched by `(group, solver, case)`, so `--check` only gates
//! against baselines recorded for the same bench target (it prints a
//! warning and gates nothing otherwise); the committed repo-root
//! `BENCH_baseline.json` holds the `experiments` suite and is checked by
//! `experiments -- --quick --check BENCH_baseline.json`.

use crate::baseline::{check_against_file, CompareConfig};
use crate::report::{BenchCase, BenchReport};
use ccs_core::{CcsError, Instance, Result};
use ccs_engine::{Engine, ErasedSolver};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Full-mode target cumulative measurement time per bench case.
const TARGET: Duration = Duration::from_millis(200);
/// Full-mode hard cap on measured iterations per bench case.
const MAX_ITERS: usize = 200;
/// Full-mode minimum measured iterations per bench case.
const MIN_ITERS: usize = 3;

/// Quick-mode (CI smoke) target cumulative measurement time per case.
const QUICK_TARGET: Duration = Duration::from_millis(25);
/// Quick-mode iteration cap.
const QUICK_MAX_ITERS: usize = 20;
/// Quick-mode iteration minimum.
const QUICK_MIN_ITERS: usize = 2;

/// The CLI surface shared by every bench target and the `experiments`
/// binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchOpts {
    /// Reduced measurement budget (CI smoke runs).
    pub quick: bool,
    /// Write the collected [`BenchReport`] to this path.
    pub json: Option<String>,
    /// Compare the collected report against the baseline at this path and
    /// exit non-zero on regressions.
    pub check: Option<String>,
    /// Overrides [`CompareConfig::max_time_ratio`] for `--check`.
    pub check_ratio: Option<f64>,
    /// Print the metadata of every registered solver and exit.
    pub list_solvers: bool,
}

impl BenchOpts {
    /// Parses the shared flags from an argument list (program name already
    /// stripped).  Unrecognised arguments are returned so binaries with
    /// extra flags (e.g. `experiments --exp`) can consume them; `cargo
    /// bench`'s own `--bench` passthrough flag is dropped.
    pub fn parse(args: &[String]) -> std::result::Result<(BenchOpts, Vec<String>), String> {
        let mut opts = BenchOpts::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        // A flag's value must not itself look like a flag — otherwise
        // `--json --check base.json` silently writes a file named
        // `--check` and never runs the intended baseline check.
        let value_of = |it: &mut std::slice::Iter<'_, String>,
                        flag: &str|
         -> std::result::Result<String, String> {
            match it.next() {
                Some(value) if !value.starts_with("--") => Ok(value.clone()),
                _ => Err(format!("{flag} requires a value argument")),
            }
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--list-solvers" => opts.list_solvers = true,
                "--json" => opts.json = Some(value_of(&mut it, "--json")?),
                "--check" => opts.check = Some(value_of(&mut it, "--check")?),
                "--check-ratio" => {
                    let raw = value_of(&mut it, "--check-ratio")?;
                    let ratio: f64 = raw
                        .parse()
                        .map_err(|_| format!("--check-ratio: '{raw}' is not a number"))?;
                    if !ratio.is_finite() || ratio <= 1.0 {
                        return Err(format!("--check-ratio must be > 1.0, got {ratio}"));
                    }
                    opts.check_ratio = Some(ratio);
                }
                "--bench" => {}
                other => rest.push(other.to_string()),
            }
        }
        if opts.check_ratio.is_some() && opts.check.is_none() {
            return Err("--check-ratio has no effect without --check <baseline>".to_string());
        }
        Ok((opts, rest))
    }

    /// Parses [`std::env::args`], exiting with a message on malformed flags
    /// or unrecognised arguments (bench targets take none of their own).
    /// `--list-solvers` is handled here: it prints the registry metadata and
    /// exits successfully before any benching starts.
    pub fn from_env() -> BenchOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match BenchOpts::parse(&args) {
            Ok((opts, rest)) if rest.is_empty() => {
                if opts.list_solvers {
                    print!("{}", render_solver_list(&Engine::new()));
                    std::process::exit(0);
                }
                opts
            }
            Ok((_, rest)) => {
                eprintln!("unrecognised arguments: {rest:?}");
                eprintln!(
                    "usage: [--quick] [--json <path>] [--check <baseline>] [--check-ratio <f>] [--list-solvers]"
                );
                std::process::exit(2);
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The instance-size sweep honouring `--quick` (quick runs cover the
    /// two smallest sizes only).
    pub fn sweep(&self) -> &'static [usize] {
        if self.quick {
            &crate::SIZE_SWEEP[..2]
        } else {
            &crate::SIZE_SWEEP
        }
    }

    /// The comparison thresholds for `--check`.
    pub fn compare_config(&self) -> CompareConfig {
        match self.check_ratio {
            Some(ratio) => CompareConfig::with_time_ratio(ratio),
            None => CompareConfig::default(),
        }
    }
}

/// The table printed by `--list-solvers`: one line of
/// [`ccs_engine::SolverMeta`] per registered solver (name, model, guarantee,
/// cost regime).
pub fn render_solver_list(engine: &Engine) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:<15} {:<22} cost",
        "solver", "model", "guarantee"
    );
    for meta in engine.registry().metadata() {
        let _ = writeln!(
            out,
            "{:<26} {:<15} {:<22} {}",
            meta.name,
            meta.kind.name(),
            meta.guarantee.to_string(),
            meta.cost
        );
    }
    out
}

/// A named group of bench cases: prints uniform per-solver throughput lines
/// and records every measurement for the JSON artifact.
pub struct Harness {
    group: String,
    quick: bool,
    cases: Vec<BenchCase>,
}

impl Harness {
    /// Starts a full-budget bench group (prints a header line).
    pub fn new(group: &str) -> Self {
        Harness::with_opts(group, &BenchOpts::default())
    }

    /// Starts a bench group honouring the measurement budget of `opts`.
    pub fn with_opts(group: &str, opts: &BenchOpts) -> Self {
        println!("== {group}");
        Harness {
            group: group.to_string(),
            quick: opts.quick,
            cases: Vec::new(),
        }
    }

    /// Benches a solver registered in the engine's registry.
    ///
    /// # Errors
    /// Fails when the solver is not registered or cannot solve `inst`; bench
    /// targets report such cases as skipped instead of aborting the binary.
    pub fn bench_registered(
        &mut self,
        engine: &Engine,
        solver: &str,
        case: &str,
        inst: &Instance,
    ) -> Result<()> {
        let solver = engine
            .registry()
            .get(solver)
            .ok_or_else(|| {
                CcsError::invalid_parameter(format!("solver '{solver}' is not registered"))
            })?
            .clone();
        self.bench_erased(solver.as_ref(), case, inst)
    }

    /// Benches a model-erased solver (used for accuracy-parameterised PTAS
    /// sweeps that are not part of the default registry).
    ///
    /// # Errors
    /// Fails when the solver cannot solve `inst`.
    pub fn bench_erased(
        &mut self,
        solver: &dyn ErasedSolver,
        case: &str,
        inst: &Instance,
    ) -> Result<()> {
        let name = solver.name();
        // Warm-up doubles as the quality measurement: one untimed-loop run
        // whose report yields the achieved makespan, compared against the
        // *certified* lower bound of `ccs-verify` (volume, max-job and
        // class-packing bounds, computed with no code shared with any
        // solver).  The certified bound dominates the former ad-hoc
        // `ccs-core::bounds` value, so recorded quality ratios tighten and
        // the machine-independent baseline gate only ever benefits.
        let warmup_started = Instant::now();
        let report = solver.solve_any(inst)?;
        let warmup_ns = elapsed_ns(warmup_started);
        let makespan = report.makespan.to_f64();
        let lower_bound = ccs_verify::certified_lower_bound(inst, solver.kind()).to_f64();
        let ratio = (lower_bound > 0.0).then(|| makespan / lower_bound);

        let mut case = self.measure(name, case, warmup_ns, || {
            solver
                .solve_any(inst)
                .unwrap_or_else(|e| panic!("{name} failed during timed runs: {e}"));
        });
        case.makespan = Some(makespan);
        case.lower_bound = Some(lower_bound);
        case.ratio = ratio;
        self.push(case);
        Ok(())
    }

    /// Benches an arbitrary closure under a subject label (used for
    /// substrate benches with no `Solver`, e.g. the N-fold augmentation).
    pub fn bench_fn(&mut self, subject: &str, case: &str, mut f: impl FnMut()) {
        let warmup_started = Instant::now();
        f(); // Warm-up: fills caches, triggers lazy init.
        let warmup_ns = elapsed_ns(warmup_started);
        let case = self.measure(subject, case, warmup_ns, f);
        self.push(case);
    }

    fn measure(&self, subject: &str, case: &str, warmup_ns: u64, mut f: impl FnMut()) -> BenchCase {
        let (target, max_iters, min_iters) = if self.quick {
            (QUICK_TARGET, QUICK_MAX_ITERS, QUICK_MIN_ITERS)
        } else {
            (TARGET, MAX_ITERS, MIN_ITERS)
        };
        let mut samples = Vec::new();
        let started = Instant::now();
        while samples.len() < min_iters || (samples.len() < max_iters && started.elapsed() < target)
        {
            let t = Instant::now();
            f();
            samples.push(elapsed_ns(t));
        }
        samples.sort_unstable();
        let median_ns = samples[samples.len() / 2];
        // Nearest-rank p95: index ⌈0.95·len⌉ − 1 (len·95/100 rounds the
        // rank up past it — for 20 samples that would record the maximum).
        let p95_ns = samples[(samples.len() * 95).div_ceil(100) - 1];
        let secs = median_ns as f64 / 1e9;
        let throughput = if secs > 0.0 {
            1.0 / secs
        } else {
            f64::INFINITY
        };
        println!(
            "bench {:<22} {:<26} {:<20} {:>12.3} ms/iter {:>12.1} iter/s   ({} samples)",
            self.group,
            subject,
            case,
            secs * 1e3,
            throughput,
            samples.len()
        );
        let (family, size) = BenchCase::parse_label(case);
        BenchCase {
            group: self.group.clone(),
            solver: subject.to_string(),
            case: case.to_string(),
            family,
            size,
            warmup_ns,
            iters: samples.len() as u64,
            min_ns: samples[0],
            median_ns,
            p95_ns,
            makespan: None,
            lower_bound: None,
            ratio: None,
            p99_ns: None,
            throughput_rps: None,
            cache_hit_rate: None,
            warm_hit_rate: None,
            shed_rate: None,
        }
    }

    fn push(&mut self, case: BenchCase) {
        self.cases.push(case);
    }

    /// Prints a skip notice for a solver/case this target could not bench
    /// (unknown name, instance outside the solver's limits).
    pub fn skip(&self, subject: &str, case: &str, why: &CcsError) {
        println!(
            "bench {:<22} {:<26} {:<20} skipped: {why}",
            self.group, subject, case
        );
    }

    /// The cases recorded so far.
    pub fn cases(&self) -> &[BenchCase] {
        &self.cases
    }

    /// Consumes the harness, yielding its recorded cases (used by binaries
    /// that merge several groups into one report).
    pub fn into_cases(self) -> Vec<BenchCase> {
        self.cases
    }

    /// Consumes the harness into a single-group [`BenchReport`].
    pub fn into_report(self) -> BenchReport {
        let mut report = BenchReport::new(self.quick);
        report.extend(self.cases);
        report
    }

    /// Standard tail of every bench target: builds the report, honours
    /// `--json` and `--check`, and maps regressions to a failing exit code.
    pub fn finish(self, opts: &BenchOpts) -> ExitCode {
        finish_report(self.into_report(), opts)
    }
}

/// [`Harness::finish`] for binaries that assembled a multi-group report
/// themselves.
pub fn finish_report(report: BenchReport, opts: &BenchOpts) -> ExitCode {
    if let Some(path) = &opts.json {
        if let Err(e) = report.write_file(path) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} cases to '{path}'", report.cases.len());
    }
    if let Some(baseline) = &opts.check {
        match check_against_file(&report, baseline, &opts.compare_config()) {
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            Ok(comparison) if comparison.has_regressions() => {
                eprintln!(
                    "FAIL: {} case(s) regressed or went missing",
                    comparison.failures().len()
                );
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
        }
    }
    ExitCode::SUCCESS
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn harness_runs_a_registered_solver_and_records_quality() {
        let mut harness = Harness::with_opts(
            "harness_selftest",
            &BenchOpts {
                quick: true,
                ..Default::default()
            },
        );
        let engine = Engine::new();
        let inst = instance_from_pairs(2, 1, &[(3, 0), (4, 1)]).unwrap();
        harness
            .bench_registered(&engine, "baseline-lpt", "tiny/2", &inst)
            .unwrap();
        let mut count = 0;
        harness.bench_fn("closure", "count", || count += 1);
        assert!(count >= QUICK_MIN_ITERS);

        let cases = harness.cases();
        assert_eq!(cases.len(), 2);
        let solver_case = &cases[0];
        assert_eq!(solver_case.solver, "baseline-lpt");
        assert_eq!(solver_case.family.as_deref(), Some("tiny"));
        assert_eq!(solver_case.size, Some(2));
        assert!(solver_case.iters >= QUICK_MIN_ITERS as u64);
        assert!(solver_case.min_ns <= solver_case.median_ns);
        assert!(solver_case.median_ns <= solver_case.p95_ns);
        // LPT on two jobs of different classes on two machines is optimal.
        assert_eq!(solver_case.makespan, Some(4.0));
        assert_eq!(solver_case.lower_bound, Some(4.0));
        assert_eq!(solver_case.ratio, Some(1.0));
        assert!(cases[1].makespan.is_none());

        let report = harness.into_report();
        assert!(report.quick);
        assert_eq!(report.cases.len(), 2);
    }

    #[test]
    fn unknown_solver_is_an_error_not_a_panic() {
        let mut harness = Harness::new("harness_selftest");
        let engine = Engine::new();
        let inst = instance_from_pairs(1, 1, &[(1, 0)]).unwrap();
        let err = harness
            .bench_registered(&engine, "nope", "tiny", &inst)
            .unwrap_err();
        assert!(err.to_string().contains("not registered"));
        harness.skip("nope", "tiny", &err);
        assert!(harness.cases().is_empty());
    }

    #[test]
    fn list_solvers_flag_and_rendering() {
        let (opts, rest) = BenchOpts::parse(&["--list-solvers".to_string()]).unwrap();
        assert!(opts.list_solvers);
        assert!(rest.is_empty());
        let (plain, _) = BenchOpts::parse(&[]).unwrap();
        assert!(!plain.list_solvers);

        let table = render_solver_list(&Engine::new());
        // Header plus one line per registered solver.
        assert_eq!(table.lines().count(), 1 + Engine::new().registry().len());
        for fragment in [
            "approx-splittable-2",
            "ptas-preemptive",
            "exact-nonpreemptive",
            "baseline-lpt",
            "7/3-approximation",
            "instance-exponential",
            "accuracy-exponential",
            "polynomial",
        ] {
            assert!(
                table.contains(fragment),
                "missing '{fragment}' in:\n{table}"
            );
        }
    }

    #[test]
    fn opts_parse_shared_flags_and_pass_the_rest_through() {
        let args: Vec<String> = [
            "--quick",
            "--json",
            "out.json",
            "--check",
            "base.json",
            "--check-ratio",
            "2.5",
            "--exp",
            "t4",
            "--bench",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = BenchOpts::parse(&args).unwrap();
        assert!(opts.quick);
        assert_eq!(opts.json.as_deref(), Some("out.json"));
        assert_eq!(opts.check.as_deref(), Some("base.json"));
        assert_eq!(opts.check_ratio, Some(2.5));
        assert_eq!(rest, vec!["--exp".to_string(), "t4".to_string()]);
        assert_eq!(opts.sweep(), &crate::SIZE_SWEEP[..2]);
        assert_eq!(opts.compare_config().max_time_ratio, 2.5);

        assert!(BenchOpts::parse(&["--json".to_string()]).is_err());
        assert!(BenchOpts::parse(&["--check-ratio".to_string(), "0.5".to_string()]).is_err());
        // A flag must not swallow a following flag as its value.
        let swallowed: Vec<String> = ["--json", "--check", "base.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchOpts::parse(&swallowed).is_err());
        // --check-ratio without --check is a mistake, not a no-op.
        let dangling: Vec<String> = ["--check-ratio", "2.0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(BenchOpts::parse(&dangling).is_err());
        let (full, _) = BenchOpts::parse(&[]).unwrap();
        assert!(!full.quick);
        assert_eq!(full.sweep(), &crate::SIZE_SWEEP[..]);
    }
}

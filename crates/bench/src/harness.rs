//! The workspace's benchmark harness.
//!
//! Criterion is unavailable in this offline build environment, so every
//! bench target opts out of the default libtest harness (`harness = false`
//! in `Cargo.toml`) and drives this module instead.  All eight benches go
//! through the same timing loop and — where the subject is a scheduling
//! algorithm — through the engine's solver registry, so the emitted
//! per-solver throughput numbers are directly comparable across benches:
//!
//! ```text
//! bench approx_splittable    approx-splittable-2        uniform/100        0.812 ms/iter     1231.5 iter/s
//! ```

use ccs_core::Instance;
use ccs_engine::{Engine, ErasedSolver};
use std::time::{Duration, Instant};

/// Target cumulative measurement time per bench case.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations per bench case.
const MAX_ITERS: usize = 200;
/// Minimum measured iterations per bench case.
const MIN_ITERS: usize = 3;

/// A named group of bench cases writing uniform per-solver throughput lines.
pub struct Harness {
    group: &'static str,
}

impl Harness {
    /// Starts a bench group (prints a header line).
    pub fn new(group: &'static str) -> Self {
        println!("== {group}");
        Harness { group }
    }

    /// Benches a solver registered in the engine's registry.
    ///
    /// # Panics
    /// Panics if the solver is not registered or fails on `inst` — a bench
    /// that cannot run is a bug, not a measurement.
    pub fn bench_registered(&self, engine: &Engine, solver: &str, case: &str, inst: &Instance) {
        let solver = engine
            .registry()
            .get(solver)
            .unwrap_or_else(|| panic!("solver '{solver}' is not registered"))
            .clone();
        self.bench_erased(solver.as_ref(), case, inst);
    }

    /// Benches a model-erased solver (used for accuracy-parameterised PTAS
    /// sweeps that are not part of the default registry).
    pub fn bench_erased(&self, solver: &dyn ErasedSolver, case: &str, inst: &Instance) {
        let name = solver.name();
        self.run(name, case, || {
            solver
                .solve_any(inst)
                .unwrap_or_else(|e| panic!("{name} failed on bench case {case}: {e}"));
        });
    }

    /// Benches an arbitrary closure under a subject label (used for
    /// substrate benches with no `Solver`, e.g. the N-fold augmentation).
    pub fn bench_fn(&self, subject: &str, case: &str, mut f: impl FnMut()) {
        self.run(subject, case, &mut f);
    }

    fn run(&self, subject: &str, case: &str, mut f: impl FnMut()) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        f();
        let mut samples = Vec::new();
        let started = Instant::now();
        while samples.len() < MIN_ITERS || (samples.len() < MAX_ITERS && started.elapsed() < TARGET)
        {
            let t = Instant::now();
            f();
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let secs = median.as_secs_f64();
        let throughput = if secs > 0.0 {
            1.0 / secs
        } else {
            f64::INFINITY
        };
        println!(
            "bench {:<22} {:<26} {:<20} {:>12.3} ms/iter {:>12.1} iter/s   ({} samples)",
            self.group,
            subject,
            case,
            secs * 1e3,
            throughput,
            samples.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::instance::instance_from_pairs;

    #[test]
    fn harness_runs_a_registered_solver() {
        let harness = Harness::new("harness_selftest");
        let engine = Engine::new();
        let inst = instance_from_pairs(2, 1, &[(3, 0), (4, 1)]).unwrap();
        harness.bench_registered(&engine, "baseline-lpt", "tiny", &inst);
        let mut count = 0;
        harness.bench_fn("closure", "count", || count += 1);
        assert!(count >= MIN_ITERS);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_solver_panics() {
        let harness = Harness::new("harness_selftest");
        let engine = Engine::new();
        let inst = instance_from_pairs(1, 1, &[(1, 0)]).unwrap();
        harness.bench_registered(&engine, "nope", "tiny", &inst);
    }
}

//! Trace-driven soak replay: the *system* under production-shaped load.
//!
//! The micro-bench targets measure solvers one instance at a time; this
//! module replays a deterministic [`ccs_gen::trace::Trace`] — Zipf-popular
//! pool solves, session delta chains and bursty arrivals — through the full
//! service stack and records end-to-end behaviour: per-request latency
//! (p50/p95/p99), throughput, solution-cache hit rate, warm-start hit rate
//! and admission shed rate.  Two replay paths cover the two deployment
//! shapes:
//!
//! * [`replay_engine`] — in-process: pool solves go through the worker pool
//!   via [`Engine::submit`] (latencies harvested at completion by a
//!   collector thread), session frames run inline through
//!   [`ccs_engine::handle_session_frame`] exactly as the service layers do,
//! * [`replay_netd`] — over real TCP: a [`NetServer`] on an ephemeral
//!   loopback port, several client connections with the trace partitioned
//!   across them (chains pinned to a connection; chain frames run in
//!   lockstep with their acks, pool solves pipeline freely), final counters
//!   from the server's drain statistics.
//!
//! Replays are wall-clock experiments, but every *counter* total
//! ([`SoakCounters`]) is a pure function of the trace: same trace ⇒ same
//! completed/ok/error/shed/cache/warm totals, which is what the
//! determinism tests pin.  Results flatten into [`BenchCase`]s under the
//! `soak` group (solvers `engine` / `netd`), so the committed
//! `BENCH_baseline.json` gates soak regressions exactly like the
//! micro-bench groups.

use crate::report::BenchCase;
use ccs_core::{CcsError, Instance, ScheduleKind};
use ccs_engine::wire::{self, SessionAck, SessionFrame, WireRequest};
use ccs_engine::{handle_session_frame, Engine, NetServer, NetdConfig, SolveHandle, SolveRequest};
use ccs_gen::trace::{Trace, TraceDelta, TraceEvent, TraceOp};
use ccs_session::{InstanceDelta, NewJob, SessionInstance, SessionStore};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Collector idle sleep between completion sweeps (bounds the latency
/// measurement error of the in-process path).
const POLL_SLEEP: Duration = Duration::from_micros(20);

/// How long a connection driver waits for a session acknowledgement before
/// declaring the replay wedged (session frames are answered inline by the
/// service, so anything near this is a hang, not load).
const ACK_TIMEOUT: Duration = Duration::from_secs(60);

/// Tuning knobs of a soak replay (not part of the trace: two replays of the
/// same trace under different configs still produce the same counter
/// totals, only the timing distributions move).
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Worker threads of the engine's solve pool.
    pub workers: usize,
    /// Solution-cache capacity in entries.  Must exceed the trace's
    /// distinct-key count for the cache counters to stay deterministic
    /// (no evictions ⇒ misses = distinct keys); the default comfortably
    /// covers both built-in tiers.
    pub cache: usize,
    /// Client connections of the netd path.
    pub conns: usize,
    /// Honour the trace's arrival timestamps (sleep until each event is
    /// due).  `false` replays at maximum speed — counter totals are
    /// unchanged, latencies lose the burst-queueing component.
    pub pace: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            workers: 4,
            cache: 4096,
            conns: 2,
            pace: true,
        }
    }
}

/// Deterministic outcome totals of one replay: a pure function of the
/// trace (wall-clock and latencies are not — they live on
/// [`SoakOutcome`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoakCounters {
    /// Events answered with a solution, acknowledgement or structured
    /// error (everything except shed requests).
    pub completed: u64,
    /// Events answered successfully (solutions and session acks).
    pub ok: u64,
    /// Events answered with a non-overload structured error.
    pub errors: u64,
    /// Requests shed by admission control (netd path only; excluded from
    /// `completed` and from the latency distribution).
    pub shed: u64,
    /// Solution-cache hits (stored entry or single-flight coalesce).
    pub cache_hits: u64,
    /// Solution-cache misses (a solver ran).
    pub cache_misses: u64,
    /// Solver runs that consumed a warm-start hint (session solves from
    /// each chain's second solve on).
    pub warm_hits: u64,
    /// Solver runs hinted but unable to use the hint, plus unhinted runs
    /// recorded by warm-aware solvers.
    pub warm_misses: u64,
}

impl SoakCounters {
    /// One-line machine-parseable rendering (the determinism tests compare
    /// these across same-seed replays).
    pub fn line(&self) -> String {
        format!(
            "completed={} ok={} errors={} shed={} cache_hits={} cache_misses={} warm_hits={} warm_misses={}",
            self.completed,
            self.ok,
            self.errors,
            self.shed,
            self.cache_hits,
            self.cache_misses,
            self.warm_hits,
            self.warm_misses
        )
    }

    /// `cache_hits / (cache_hits + cache_misses)`, `None` before any
    /// cache lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// `warm_hits / (warm_hits + warm_misses)`, `None` when no warm-aware
    /// solver ran.
    pub fn warm_hit_rate(&self) -> Option<f64> {
        let total = self.warm_hits + self.warm_misses;
        (total > 0).then(|| self.warm_hits as f64 / total as f64)
    }

    /// Fraction of requests shed by admission control, `0.0` on an empty
    /// replay.
    pub fn shed_rate(&self) -> f64 {
        let total = self.completed + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    fn absorb(&mut self, other: &SoakCounters) {
        self.completed += other.completed;
        self.ok += other.ok;
        self.errors += other.errors;
        self.shed += other.shed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
    }
}

/// The full result of one replay: deterministic counters plus the
/// machine-dependent timing side (latency distribution, wall-clock).
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Deterministic totals.
    pub counters: SoakCounters,
    /// Per-request end-to-end latencies in nanoseconds, sorted ascending
    /// (shed requests excluded).
    pub latencies_ns: Vec<u64>,
    /// Wall-clock of the whole replay in nanoseconds.
    pub wall_ns: u64,
}

impl SoakOutcome {
    fn new(counters: SoakCounters, mut latencies_ns: Vec<u64>, wall_ns: u64) -> SoakOutcome {
        latencies_ns.sort_unstable();
        SoakOutcome {
            counters,
            latencies_ns,
            wall_ns,
        }
    }

    /// Nearest-rank percentile of the latency distribution (same rank rule
    /// as the harness's p95), `0` on an empty replay.
    pub fn percentile_ns(&self, pct: usize) -> u64 {
        let n = self.latencies_ns.len();
        if n == 0 {
            return 0;
        }
        self.latencies_ns[((n * pct).div_ceil(100).max(1) - 1).min(n - 1)]
    }

    /// Completed requests per second of replay wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall_ns as f64 / 1e9;
        if secs > 0.0 {
            self.counters.completed as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Flattens the outcome into a `soak`-group [`BenchCase`]: `min_ns` /
    /// `median_ns` / `p95_ns` hold the latency min/p50/p95, `p99_ns` the
    /// tail, `iters` the completed-request count.
    pub fn to_case(&self, solver: &str, case: &str) -> BenchCase {
        let (family, size) = BenchCase::parse_label(case);
        BenchCase {
            group: "soak".to_string(),
            solver: solver.to_string(),
            case: case.to_string(),
            family,
            size,
            warmup_ns: 0,
            iters: self.counters.completed,
            min_ns: self.latencies_ns.first().copied().unwrap_or(0),
            median_ns: self.percentile_ns(50),
            p95_ns: self.percentile_ns(95),
            makespan: None,
            lower_bound: None,
            ratio: None,
            p99_ns: Some(self.percentile_ns(99)),
            throughput_rps: Some(self.throughput_rps()),
            cache_hit_rate: self.counters.cache_hit_rate(),
            warm_hit_rate: self.counters.warm_hit_rate(),
            shed_rate: Some(self.counters.shed_rate()),
        }
    }
}

/// Builds the [`SolveRequest`] of a pool solve event.
fn solve_request(
    model: ScheduleKind,
    epsilon: Option<f64>,
    budget_ms: Option<u64>,
) -> SolveRequest {
    let mut req = match epsilon {
        Some(eps) => SolveRequest::epsilon(model, eps).expect("trace epsilons are valid"),
        None => SolveRequest::auto(model),
    };
    if let Some(ms) = budget_ms {
        req = req.with_budget(Duration::from_millis(ms));
    }
    req
}

/// Sleeps until `at_ns` past the replay start (no-op once behind schedule —
/// a loaded replay degrades to maximum speed instead of stretching).
fn pace(started: Instant, at_ns: u64) {
    let due = started + Duration::from_nanos(at_ns);
    let now = Instant::now();
    if due > now {
        thread::sleep(due - now);
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-chain driver state: the server-assigned session id and the stable
/// external ids of delta-added jobs (a stack, so
/// [`TraceDelta::RemoveRecent`] maps onto `RemoveJobs` of the most recent
/// survivors; base jobs take ids `0..n` and are never removed).
struct ChainState {
    session: String,
    next_id: u64,
    added: Vec<u64>,
}

impl ChainState {
    fn new(base_jobs: usize) -> ChainState {
        ChainState {
            session: String::new(),
            next_id: base_jobs as u64,
            added: Vec::new(),
        }
    }
}

/// Maps a trace delta onto the session wire delta, maintaining the
/// added-id stack.
fn instance_delta(delta: &TraceDelta, state: &mut ChainState) -> InstanceDelta {
    match delta {
        TraceDelta::AddJobs(jobs) => {
            let new: Vec<NewJob> = jobs.iter().map(|&(p, c)| NewJob::new(p, c)).collect();
            for _ in &new {
                state.added.push(state.next_id);
                state.next_id += 1;
            }
            InstanceDelta::AddJobs(new)
        }
        TraceDelta::RemoveRecent(k) => InstanceDelta::RemoveJobs(
            (0..*k)
                .map(|_| state.added.pop().expect("trace synthesis guarantees depth"))
                .collect(),
        ),
        TraceDelta::AddMachines(count) => InstanceDelta::AddMachines(*count),
    }
}

/// Builds the initial [`SessionInstance`] of a chain-open event.
fn open_instance(machines: u64, class_slots: u64, jobs: &[(u64, u32)]) -> SessionInstance {
    let mut instance = SessionInstance::new(machines, class_slots).expect("trace shapes are valid");
    instance
        .apply(&InstanceDelta::AddJobs(
            jobs.iter().map(|&(p, c)| NewJob::new(p, c)).collect(),
        ))
        .expect("trace base jobs are valid");
    instance
}

// ---------------------------------------------------------------------------
// In-process replay.
// ---------------------------------------------------------------------------

/// Runs a replay driver on a worker-sized stack.  Session-frame solves run
/// inline on the driving thread (in-process replay) or on the netd poll
/// thread (TCP replay), and the accuracy-exponential pipelines recurse too
/// deeply for a default 2 MiB thread stack in debug builds — give the
/// drivers the same headroom the engine's own pool threads get.
fn on_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    thread::scope(|s| {
        thread::Builder::new()
            .name("soak-replay".into())
            .stack_size(ccs_core::par::WORKER_STACK_BYTES)
            .spawn_scoped(s, f)
            .expect("spawning the replay thread")
            .join()
            .expect("replay thread")
    })
}

/// Replays the trace in-process: pool solves through the worker pool
/// ([`Engine::submit`]), session frames inline through
/// [`handle_session_frame`] with a local [`SessionStore`] — the same
/// execution paths the service front ends use, minus the socket.
pub fn replay_engine(trace: &Trace, config: &SoakConfig) -> SoakOutcome {
    on_big_stack(|| replay_engine_inner(trace, config))
}

fn replay_engine_inner(trace: &Trace, config: &SoakConfig) -> SoakOutcome {
    let engine = Engine::new()
        .with_workers(config.workers.max(1))
        .with_cache(config.cache);
    let pool: Vec<Arc<Instance>> = trace.pool.iter().cloned().map(Arc::new).collect();

    // The collector harvests worker-pool handles as they finish, so each
    // request's latency is measured at its own completion (within
    // POLL_SLEEP), not at some later synchronisation point.
    let (tx, rx) = mpsc::channel::<(Instant, SolveHandle)>();
    let collector = thread::spawn(move || {
        let mut pending: Vec<(Instant, SolveHandle)> = Vec::new();
        let mut latencies = Vec::new();
        let mut ok = 0u64;
        let mut errors = 0u64;
        let mut open = true;
        while open || !pending.is_empty() {
            loop {
                match rx.try_recv() {
                    Ok(entry) => pending.push(entry),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            let mut progressed = false;
            pending.retain(|(sent, handle)| match handle.poll() {
                None => true,
                Some(result) => {
                    progressed = true;
                    latencies.push(elapsed_ns(*sent));
                    match result {
                        Ok(_) => ok += 1,
                        Err(_) => errors += 1,
                    }
                    false
                }
            });
            if !progressed && (open || !pending.is_empty()) {
                thread::sleep(POLL_SLEEP);
            }
        }
        (latencies, ok, errors)
    });

    let started = Instant::now();
    let mut sessions = SessionStore::new();
    let mut chains: HashMap<u32, ChainState> = HashMap::new();
    let mut counters = SoakCounters::default();
    let mut session_latencies = Vec::new();
    for event in &trace.events {
        if config.pace {
            pace(started, event.at_ns);
        }
        let frame = match &event.op {
            TraceOp::Solve {
                pool: idx,
                model,
                epsilon,
                budget_ms,
            } => {
                let req = solve_request(*model, *epsilon, *budget_ms);
                let sent = Instant::now();
                let handle = engine.submit(Arc::clone(&pool[*idx]), &req);
                tx.send((sent, handle)).expect("collector is alive");
                continue;
            }
            TraceOp::Open {
                chain,
                machines,
                class_slots,
                jobs,
            } => {
                chains.insert(*chain, ChainState::new(jobs.len()));
                SessionFrame::Open {
                    id: format!("c{chain}-open"),
                    tenant: None,
                    instance: open_instance(*machines, *class_slots, jobs),
                }
            }
            TraceOp::Delta { chain, delta } => {
                let state = chains.get_mut(chain).expect("open precedes deltas");
                SessionFrame::Delta {
                    id: format!("c{chain}-delta"),
                    session: state.session.clone(),
                    deltas: vec![instance_delta(delta, state)],
                }
            }
            TraceOp::ChainSolve { chain, model } => SessionFrame::Solve {
                id: format!("c{chain}-solve"),
                session: chains[chain].session.clone(),
                request: SolveRequest::auto(*model),
            },
            TraceOp::Close { chain } => SessionFrame::Close {
                id: format!("c{chain}-close"),
                session: chains[chain].session.clone(),
            },
        };
        let opened = match &event.op {
            TraceOp::Open { chain, .. } => Some(*chain),
            _ => None,
        };
        let sent = Instant::now();
        let (line, _event) = handle_session_frame(frame, &engine, &mut sessions);
        session_latencies.push(elapsed_ns(sent));
        counters.completed += 1;
        match wire::session_ack_from_line(&line) {
            Ok(SessionAck::State { session, .. }) => {
                counters.ok += 1;
                if let Some(chain) = opened {
                    chains.get_mut(&chain).expect("just inserted").session = session;
                }
            }
            Ok(SessionAck::Closed { .. }) => counters.ok += 1,
            Err(_) => match wire::response_from_line(&line) {
                Ok(resp) if resp.outcome.is_ok() => counters.ok += 1,
                _ => counters.errors += 1,
            },
        }
    }
    drop(tx);
    let (mut latencies, ok, errors) = collector.join().expect("collector thread");
    let wall_ns = elapsed_ns(started);
    latencies.extend(session_latencies);
    counters.completed = latencies.len() as u64;
    counters.ok += ok;
    counters.errors += errors;
    let stats = engine.stats();
    counters.cache_hits = stats.cache_hits;
    counters.cache_misses = stats.cache_misses;
    counters.warm_hits = stats.warm_hits;
    counters.warm_misses = stats.warm_misses;
    SoakOutcome::new(counters, latencies, wall_ns)
}

// ---------------------------------------------------------------------------
// TCP replay through ccs-netd.
// ---------------------------------------------------------------------------

/// What the reader forwards to its connection driver for a session-frame
/// reply (pool responses are recorded reader-side only).
enum ChainReply {
    /// A state acknowledgement (open/delta) carrying the session id.
    State(String),
    /// A close acknowledgement or a session-solve response.
    Done,
}

type SentMap = Arc<Mutex<HashMap<String, Instant>>>;
type ConnOutcome = (Vec<u64>, SoakCounters);

/// Replays the trace over real TCP: a [`NetServer`] bound to an ephemeral
/// loopback port, `config.conns` client connections with the event stream
/// partitioned across them — chains pinned to `chain % conns` (chain
/// frames run in lockstep with their acknowledgements, preserving
/// per-chain order), pool solves dealt round-robin and pipelined freely.
/// Counter totals come from the clients plus the server's drain
/// statistics.
///
/// # Errors
/// Propagates socket-level failures (bind, connect, write) and a wedged
/// replay (no session acknowledgement within a minute).
pub fn replay_netd(trace: &Trace, config: &SoakConfig) -> std::io::Result<SoakOutcome> {
    on_big_stack(|| replay_netd_inner(trace, config))
}

fn replay_netd_inner(trace: &Trace, config: &SoakConfig) -> std::io::Result<SoakOutcome> {
    let engine = Engine::new()
        .with_workers(config.workers.max(1))
        .with_cache(config.cache);
    let server = NetServer::bind(engine, "127.0.0.1:0", NetdConfig::default())?;
    let addr = server.local_addr()?;
    let handle = server.handle();
    // The netd poll loop runs session solves inline: worker-sized stack.
    let server_thread = thread::Builder::new()
        .name("soak-netd".into())
        .stack_size(ccs_core::par::WORKER_STACK_BYTES)
        .spawn(move || server.run())
        .expect("spawning the netd server thread");

    let conns = config.conns.max(1);
    let mut parts: Vec<Vec<TraceEvent>> = (0..conns).map(|_| Vec::new()).collect();
    let mut solve_ordinal = 0usize;
    for event in &trace.events {
        let conn = match &event.op {
            TraceOp::Solve { .. } => {
                solve_ordinal += 1;
                (solve_ordinal - 1) % conns
            }
            TraceOp::Open { chain, .. }
            | TraceOp::Delta { chain, .. }
            | TraceOp::ChainSolve { chain, .. }
            | TraceOp::Close { chain } => *chain as usize % conns,
        };
        parts[conn].push(event.clone());
    }

    let pool = Arc::new(trace.pool.clone());
    let started = Instant::now();
    let workers: Vec<_> = parts
        .into_iter()
        .enumerate()
        .map(|(conn, events)| {
            let pool = Arc::clone(&pool);
            let pace_arrivals = config.pace;
            thread::spawn(move || run_conn(addr, conn, pool, events, started, pace_arrivals))
        })
        .collect();

    let mut counters = SoakCounters::default();
    let mut latencies = Vec::new();
    let mut failure: Option<std::io::Error> = None;
    for worker in workers {
        match worker.join().expect("connection driver") {
            Ok((conn_latencies, conn_counters)) => {
                latencies.extend(conn_latencies);
                counters.absorb(&conn_counters);
            }
            Err(e) => failure = Some(e),
        }
    }
    let wall_ns = elapsed_ns(started);
    handle.drain();
    let stats = server_thread
        .join()
        .expect("server thread")
        .expect("server drain");
    if let Some(e) = failure {
        return Err(e);
    }
    counters.cache_hits = stats.engine.cache_hits;
    counters.cache_misses = stats.engine.cache_misses;
    counters.warm_hits = stats.engine.warm_hits;
    counters.warm_misses = stats.engine.warm_misses;
    Ok(SoakOutcome::new(counters, latencies, wall_ns))
}

/// Drives one client connection: writes its partition in trace order
/// (pacing against the shared start), runs chain frames in lockstep with
/// their acknowledgements, then half-closes and joins its reader.
fn run_conn(
    addr: SocketAddr,
    conn: usize,
    pool: Arc<Vec<Instance>>,
    events: Vec<TraceEvent>,
    started: Instant,
    pace_arrivals: bool,
) -> std::io::Result<ConnOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    let sent_at: SentMap = Arc::new(Mutex::new(HashMap::new()));
    let (ack_tx, ack_rx) = mpsc::channel::<ChainReply>();
    let reader_stream = stream.try_clone()?;
    let reader_sent = Arc::clone(&sent_at);
    let reader = thread::spawn(move || read_conn(reader_stream, &reader_sent, &ack_tx));

    let wait_ack = |label: &str| -> std::io::Result<ChainReply> {
        ack_rx.recv_timeout(ACK_TIMEOUT).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("no reply to {label} within {ACK_TIMEOUT:?}"),
            )
        })
    };

    let mut chains: HashMap<u32, ChainState> = HashMap::new();
    let send = |stream: &mut TcpStream, id: String, line: String| -> std::io::Result<()> {
        sent_at.lock().expect("sent map").insert(id, Instant::now());
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")
    };
    for (seq, event) in events.iter().enumerate() {
        if pace_arrivals {
            pace(started, event.at_ns);
        }
        match &event.op {
            TraceOp::Solve {
                pool: idx,
                model,
                epsilon,
                budget_ms,
            } => {
                let id = format!("p{conn}-{seq}");
                let line = wire::request_to_line(&WireRequest {
                    id: id.clone(),
                    tenant: None,
                    instance: pool[*idx].clone(),
                    request: solve_request(*model, *epsilon, *budget_ms),
                });
                send(&mut stream, id, line)?;
            }
            TraceOp::Open {
                chain,
                machines,
                class_slots,
                jobs,
            } => {
                chains.insert(*chain, ChainState::new(jobs.len()));
                let id = format!("c{chain}-{seq}");
                let frame = SessionFrame::Open {
                    id: id.clone(),
                    tenant: None,
                    instance: open_instance(*machines, *class_slots, jobs),
                };
                send(&mut stream, id, wire::session_frame_to_line(&frame))?;
                if let ChainReply::State(session) = wait_ack("session open")? {
                    chains.get_mut(chain).expect("just inserted").session = session;
                }
            }
            TraceOp::Delta { chain, delta } => {
                let state = chains.get_mut(chain).expect("open precedes deltas");
                let id = format!("c{chain}-{seq}");
                let frame = SessionFrame::Delta {
                    id: id.clone(),
                    session: state.session.clone(),
                    deltas: vec![instance_delta(delta, state)],
                };
                send(&mut stream, id, wire::session_frame_to_line(&frame))?;
                wait_ack("session delta")?;
            }
            TraceOp::ChainSolve { chain, model } => {
                let id = format!("c{chain}-{seq}");
                let frame = SessionFrame::Solve {
                    id: id.clone(),
                    session: chains[chain].session.clone(),
                    request: SolveRequest::auto(*model),
                };
                send(&mut stream, id, wire::session_frame_to_line(&frame))?;
                wait_ack("session solve")?;
            }
            TraceOp::Close { chain } => {
                let id = format!("c{chain}-{seq}");
                let frame = SessionFrame::Close {
                    id: id.clone(),
                    session: chains[chain].session.clone(),
                };
                send(&mut stream, id, wire::session_frame_to_line(&frame))?;
                wait_ack("session close")?;
            }
        }
    }
    // Half-close: the server finishes everything admitted on this
    // connection, flushes, and closes — unblocking the reader at EOF.
    stream.shutdown(Shutdown::Write)?;
    Ok(reader.join().expect("connection reader"))
}

/// Reads one connection's responses to EOF, recording latency and outcome
/// for every frame and forwarding session replies (ids prefixed `c`) to
/// the driver for lockstep sequencing.
fn read_conn(stream: TcpStream, sent_at: &SentMap, acks: &mpsc::Sender<ChainReply>) -> ConnOutcome {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut latencies = Vec::new();
    let mut counters = SoakCounters::default();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let (id, shed, ok, reply) = match wire::response_from_line(trimmed) {
            Ok(resp) => {
                let shed = matches!(resp.outcome, Err(CcsError::Overloaded(_)));
                let ok = resp.outcome.is_ok();
                let reply = resp.id.starts_with('c').then_some(ChainReply::Done);
                (resp.id, shed, ok, reply)
            }
            Err(_) => match wire::session_ack_from_line(trimmed) {
                Ok(SessionAck::State { id, session, .. }) => {
                    (id, false, true, Some(ChainReply::State(session)))
                }
                Ok(SessionAck::Closed { id, .. }) => (id, false, true, Some(ChainReply::Done)),
                // Unparseable line: count it, attribute no latency.
                Err(_) => (String::new(), false, false, None),
            },
        };
        let sent = sent_at.lock().expect("sent map").remove(&id);
        if shed {
            counters.shed += 1;
        } else {
            counters.completed += 1;
            if ok {
                counters.ok += 1;
            } else {
                counters.errors += 1;
            }
            if let Some(sent) = sent {
                latencies.push(elapsed_ns(sent));
            }
        }
        if let Some(reply) = reply {
            // The driver may already be past its last chain frame.
            let _ = acks.send(reply);
        }
    }
    (latencies, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_gen::trace::TraceParams;
    use ccs_gen::GenParams;

    /// A shrunken tier so the determinism tests replay in well under a
    /// second each, debug mode included.
    fn tiny_params() -> TraceParams {
        TraceParams {
            requests: 48,
            pool: 8,
            chains: 3,
            chain_steps: 3,
            mean_gap_ns: 2_000,
            burst_len: 4,
            shape: GenParams {
                jobs: 40,
                machines: 10,
                classes: 8,
                class_slots: 3,
                p_min: 1,
                p_max: 200,
            },
            ..TraceParams::quick()
        }
    }

    fn max_speed() -> SoakConfig {
        SoakConfig {
            workers: 2,
            cache: 1024,
            conns: 2,
            pace: false,
        }
    }

    // The determinism tests pin seeds whose chain mutations produce both a
    // warm hit and a warm miss (replay is deterministic, so any seed either
    // always does or never does): the ledger-hint path is then covered end
    // to end, in both outcomes, through both deployment shapes.
    #[test]
    fn engine_replay_counters_are_deterministic_across_runs() {
        let trace = Trace::synthesize(&tiny_params(), 2);
        let config = max_speed();
        let a = replay_engine(&trace, &config);
        let b = replay_engine(&trace, &config);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.counters.line(), b.counters.line());
        assert_eq!(a.counters.completed, trace.events.len() as u64);
        assert_eq!(a.counters.ok, a.counters.completed);
        assert_eq!(a.counters.errors, 0);
        assert_eq!(a.counters.shed, 0);
        // The Zipf head guarantees repeats, so the cache must have hit.
        assert!(a.counters.cache_hits > 0, "{}", a.counters.line());
        assert!(a.counters.cache_misses > 0);
        // Non-preemptive chain solves route to the warm-aware exact solver
        // from the ledger hints; this seed yields a hit and a miss.
        assert!(a.counters.warm_hits > 0, "{}", a.counters.line());
        assert!(a.counters.warm_misses > 0, "{}", a.counters.line());
        assert_eq!(a.latencies_ns.len(), a.counters.completed as usize);
    }

    #[test]
    fn netd_replay_counters_are_deterministic_across_runs() {
        let trace = Trace::synthesize(&tiny_params(), 7);
        let config = max_speed();
        let a = replay_netd(&trace, &config).expect("first replay");
        let b = replay_netd(&trace, &config).expect("second replay");
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.counters.completed, trace.events.len() as u64);
        assert_eq!(a.counters.ok, a.counters.completed);
        assert_eq!(a.counters.errors, 0);
        assert_eq!(a.counters.shed, 0);
        assert!(a.counters.cache_hits > 0, "{}", a.counters.line());
        assert!(a.counters.warm_hits > 0, "{}", a.counters.line());
        assert!(a.counters.warm_misses > 0, "{}", a.counters.line());
    }

    #[test]
    fn engine_and_netd_agree_on_counter_totals() {
        let trace = Trace::synthesize(&tiny_params(), 19);
        let config = max_speed();
        let engine = replay_engine(&trace, &config);
        let netd = replay_netd(&trace, &config).expect("netd replay");
        // Same trace through either path: identical deterministic totals
        // (the latency distributions of course differ).
        assert_eq!(engine.counters, netd.counters);
    }

    #[test]
    fn outcome_flattens_into_a_soak_case() {
        let counters = SoakCounters {
            completed: 4,
            ok: 3,
            errors: 1,
            shed: 1,
            cache_hits: 2,
            cache_misses: 2,
            warm_hits: 1,
            warm_misses: 1,
        };
        let outcome = SoakOutcome::new(counters, vec![40, 10, 30, 20], 2_000_000_000);
        assert_eq!(outcome.latencies_ns, vec![10, 20, 30, 40]);
        assert!(outcome.percentile_ns(50) <= outcome.percentile_ns(95));
        assert!(outcome.percentile_ns(95) <= outcome.percentile_ns(99));
        assert_eq!(outcome.percentile_ns(99), 40);
        let case = outcome.to_case("engine", "quick/240");
        assert_eq!(case.group, "soak");
        assert_eq!(case.family.as_deref(), Some("quick"));
        assert_eq!(case.size, Some(240));
        assert_eq!(case.iters, 4);
        assert_eq!(case.min_ns, 10);
        assert_eq!(case.p99_ns, Some(40));
        assert_eq!(case.throughput_rps, Some(2.0));
        assert_eq!(case.cache_hit_rate, Some(0.5));
        assert_eq!(case.warm_hit_rate, Some(0.5));
        assert_eq!(case.shed_rate, Some(0.2));
        assert!(case.makespan.is_none());
    }
}

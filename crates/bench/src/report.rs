//! Structured benchmark results: per-case samples collected by the
//! [`crate::Harness`] and serialised through `ccs-core::json` into a single
//! machine-readable artifact (`BENCH_results.json` by convention).
//!
//! A report records, per bench case, both the **speed** side (warmup time,
//! iteration count, min/median/p95 wall-clock) and — when the subject is a
//! registered solver — the **quality** side (achieved makespan, the instance
//! lower bound from `ccs-core::bounds`, and their ratio).  The
//! [`crate::baseline`] module diffs two reports and gates regressions on
//! either axis.

use ccs_core::json::{self, JsonValue};
use ccs_core::{CcsError, Result};
use std::path::Path;

/// Schema identifier stamped into every report, bumped on breaking changes.
pub const SCHEMA: &str = "ccs-bench/1";

/// One measured bench case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Bench group (one per bench target / experiment table).
    pub group: String,
    /// Subject label — a registry solver name or a free-form subject for
    /// substrate benches.
    pub solver: String,
    /// Case label, conventionally `family/size` (e.g. `uniform/100`).
    pub case: String,
    /// Generator family parsed from the case label, when it follows the
    /// `family/size` convention.
    pub family: Option<String>,
    /// Instance size parsed from the case label (number of jobs, accuracy
    /// parameter, brick count, ... — whatever the sweep varies).
    pub size: Option<u64>,
    /// Wall-clock of the single untimed warmup run, in nanoseconds.
    pub warmup_ns: u64,
    /// Number of timed iterations.
    pub iters: u64,
    /// Fastest timed iteration, in nanoseconds.
    pub min_ns: u64,
    /// Median timed iteration, in nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile timed iteration, in nanoseconds.
    pub p95_ns: u64,
    /// Achieved makespan (solver subjects only).
    pub makespan: Option<f64>,
    /// Instance lower bound from `ccs-core::bounds` for the solver's model.
    /// Deliberately the *weak* polynomial bound — cheap, deterministic, and
    /// available for every model — not the stronger `ccs-exact` bound the
    /// `--exp` reproduction tables divide by; the two ratios are therefore
    /// not comparable across the two outputs.
    pub lower_bound: Option<f64>,
    /// `makespan / lower_bound` — an upper bound on the approximation ratio
    /// actually achieved on this case (`None` when the lower bound is zero).
    pub ratio: Option<f64>,
    /// 99th-percentile end-to-end latency, in nanoseconds (soak cases:
    /// per-request latencies over one trace replay, where `min_ns`,
    /// `median_ns` and `p95_ns` hold the latency min/p50/p95 and `iters`
    /// the completed-request count).
    pub p99_ns: Option<u64>,
    /// Completed requests per second of replay wall-clock (soak cases).
    pub throughput_rps: Option<f64>,
    /// Solution-cache hit rate over the replay, `hits / (hits + misses)`
    /// (soak cases with caching enabled).
    pub cache_hit_rate: Option<f64>,
    /// Warm-start hit rate over the replay's hinted solves (soak cases).
    pub warm_hit_rate: Option<f64>,
    /// Fraction of requests shed by admission control (soak cases through
    /// `ccs-netd`; shed requests are excluded from the latency fields).
    pub shed_rate: Option<f64>,
}

impl BenchCase {
    /// The identity under which [`crate::baseline::compare`] matches cases
    /// across reports.
    pub fn key(&self) -> (String, String, String) {
        (self.group.clone(), self.solver.clone(), self.case.clone())
    }

    /// Splits a `family/size` case label into its parts (both `None` when
    /// the label does not follow the convention).
    pub fn parse_label(case: &str) -> (Option<String>, Option<u64>) {
        match case.rsplit_once('/') {
            Some((family, size)) => match size.parse::<u64>() {
                Ok(size) => (Some(family.to_string()), Some(size)),
                Err(_) => (None, None),
            },
            None => (None, None),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("group", self.group.as_str());
        obj.set("solver", self.solver.as_str());
        obj.set("case", self.case.as_str());
        if let Some(family) = &self.family {
            obj.set("family", family.as_str());
        }
        if let Some(size) = self.size {
            obj.set("size", size);
        }
        obj.set("warmup_ns", self.warmup_ns);
        obj.set("iters", self.iters);
        obj.set("min_ns", self.min_ns);
        obj.set("median_ns", self.median_ns);
        obj.set("p95_ns", self.p95_ns);
        if let Some(makespan) = self.makespan {
            obj.set("makespan", makespan);
        }
        if let Some(lower_bound) = self.lower_bound {
            obj.set("lower_bound", lower_bound);
        }
        if let Some(ratio) = self.ratio {
            obj.set("ratio", ratio);
        }
        if let Some(p99_ns) = self.p99_ns {
            obj.set("p99_ns", p99_ns);
        }
        if let Some(throughput_rps) = self.throughput_rps {
            obj.set("throughput_rps", throughput_rps);
        }
        if let Some(cache_hit_rate) = self.cache_hit_rate {
            obj.set("cache_hit_rate", cache_hit_rate);
        }
        if let Some(warm_hit_rate) = self.warm_hit_rate {
            obj.set("warm_hit_rate", warm_hit_rate);
        }
        if let Some(shed_rate) = self.shed_rate {
            obj.set("shed_rate", shed_rate);
        }
        obj
    }

    fn from_json_value(value: &JsonValue) -> Result<BenchCase> {
        let str_field = |key: &str| -> Result<String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("case is missing string field '{key}'")))
        };
        let u64_field = |key: &str| -> Result<u64> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad(&format!("case is missing integer field '{key}'")))
        };
        Ok(BenchCase {
            group: str_field("group")?,
            solver: str_field("solver")?,
            case: str_field("case")?,
            family: value
                .get("family")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            size: value.get("size").and_then(JsonValue::as_u64),
            warmup_ns: u64_field("warmup_ns")?,
            iters: u64_field("iters")?,
            min_ns: u64_field("min_ns")?,
            median_ns: u64_field("median_ns")?,
            p95_ns: u64_field("p95_ns")?,
            makespan: value.get("makespan").and_then(JsonValue::as_f64),
            lower_bound: value.get("lower_bound").and_then(JsonValue::as_f64),
            ratio: value.get("ratio").and_then(JsonValue::as_f64),
            p99_ns: value.get("p99_ns").and_then(JsonValue::as_u64),
            throughput_rps: value.get("throughput_rps").and_then(JsonValue::as_f64),
            cache_hit_rate: value.get("cache_hit_rate").and_then(JsonValue::as_f64),
            warm_hit_rate: value.get("warm_hit_rate").and_then(JsonValue::as_f64),
            shed_rate: value.get("shed_rate").and_then(JsonValue::as_f64),
        })
    }
}

/// A full benchmark run: every case measured by one invocation of a bench
/// target or of the `experiments` binary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Whether the run used the reduced `--quick` measurement budget.
    pub quick: bool,
    /// The measured cases, in measurement order.
    pub cases: Vec<BenchCase>,
}

impl BenchReport {
    /// An empty report.
    pub fn new(quick: bool) -> Self {
        BenchReport {
            quick,
            cases: Vec::new(),
        }
    }

    /// Appends the cases of another collection (used by the `experiments`
    /// binary to merge per-group harnesses into one artifact).
    pub fn extend(&mut self, cases: impl IntoIterator<Item = BenchCase>) {
        self.cases.extend(cases);
    }

    /// Serialises the report to its JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("schema", SCHEMA);
        obj.set("quick", self.quick);
        obj.set(
            "cases",
            JsonValue::Array(self.cases.iter().map(BenchCase::to_json_value).collect()),
        );
        obj
    }

    /// Serialises the report to an indented JSON string (trailing newline
    /// included, so the artifact is commit-friendly).
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json_pretty()
    }

    /// Parses a report from a JSON document.
    pub fn from_json(input: &str) -> Result<BenchReport> {
        let value = json::parse(input)?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing 'schema' field"))?;
        if schema != SCHEMA {
            return Err(bad(&format!(
                "unsupported schema '{schema}' (expected '{SCHEMA}')"
            )));
        }
        let cases = value
            .get("cases")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing 'cases' array"))?
            .iter()
            .map(BenchCase::from_json_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(BenchReport {
            quick: value
                .get("quick")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            cases,
        })
    }

    /// Writes the report to `path` as indented JSON.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json_string())
            .map_err(|e| bad(&format!("cannot write '{}': {e}", path.display())))
    }

    /// Reads a report back from `path`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<BenchReport> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad(&format!("cannot read '{}': {e}", path.display())))?;
        BenchReport::from_json(&text)
    }
}

fn bad(msg: &str) -> CcsError {
    CcsError::invalid_parameter(format!("bench report: {msg}"))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_case(solver: &str, case: &str, median_ns: u64) -> BenchCase {
        let (family, size) = BenchCase::parse_label(case);
        BenchCase {
            group: "g".to_string(),
            solver: solver.to_string(),
            case: case.to_string(),
            family,
            size,
            warmup_ns: median_ns + 1,
            iters: 10,
            min_ns: median_ns - median_ns / 10,
            median_ns,
            p95_ns: median_ns + median_ns / 10,
            makespan: Some(20.0),
            lower_bound: Some(16.0),
            ratio: Some(1.25),
            p99_ns: None,
            throughput_rps: None,
            cache_hit_rate: None,
            warm_hit_rate: None,
            shed_rate: None,
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut report = BenchReport::new(true);
        report.extend([sample_case("a", "uniform/100", 1_000_000), {
            let mut c = sample_case("b", "freeform", 2_000);
            c.makespan = None;
            c.lower_bound = None;
            c.ratio = None;
            c
        }]);
        let text = report.to_json_string();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.cases[0].family.as_deref(), Some("uniform"));
        assert_eq!(back.cases[0].size, Some(100));
        assert_eq!(back.cases[1].family, None);
        assert_eq!(back.cases[1].ratio, None);
    }

    #[test]
    fn soak_fields_round_trip_and_stay_optional() {
        let mut soak = sample_case("engine", "mixed/240", 4_000_000);
        soak.group = "soak".to_string();
        soak.makespan = None;
        soak.lower_bound = None;
        soak.ratio = None;
        soak.p99_ns = Some(9_000_000);
        soak.throughput_rps = Some(1250.5);
        soak.cache_hit_rate = Some(0.625);
        soak.warm_hit_rate = Some(0.5);
        soak.shed_rate = Some(0.0);
        let mut report = BenchReport::new(true);
        report.extend([soak.clone(), sample_case("a", "uniform/100", 1_000)]);
        let text = report.to_json_string();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.cases[0].p99_ns, Some(9_000_000));
        assert_eq!(back.cases[0].shed_rate, Some(0.0));
        // Non-soak cases omit the members entirely.
        assert_eq!(back.cases[1].p99_ns, None);
        let second = report
            .to_json_value()
            .get("cases")
            .unwrap()
            .as_array()
            .unwrap()[1]
            .clone();
        assert!(second.get("p99_ns").is_none());
        assert!(second.get("throughput_rps").is_none());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = BenchReport::new(false).to_json_value();
        doc.set("schema", "ccs-bench/999");
        assert!(BenchReport::from_json(&doc.to_json()).is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("[]").is_err());
    }

    #[test]
    fn parse_label_convention() {
        assert_eq!(
            BenchCase::parse_label("zipf/200"),
            (Some("zipf".to_string()), Some(200))
        );
        assert_eq!(
            BenchCase::parse_label("bricks/16"),
            (Some("bricks".to_string()), Some(16))
        );
        assert_eq!(BenchCase::parse_label("exponential_m"), (None, None));
        assert_eq!(BenchCase::parse_label("a/b"), (None, None));
    }
}

//! End-to-end coverage of the measurement subsystem: a report produced by a
//! real harness run survives the JSON round trip, and the baseline
//! comparator classifies improvement / within-noise / regression the way the
//! CI gate relies on (a synthetic 2x slowdown must fail the check).

use ccs_bench::report::BenchReport;
use ccs_bench::{compare, BenchOpts, CompareConfig, Family, Harness, Verdict};
use ccs_engine::Engine;

/// A harness-produced report (quick budget) over two real solvers.
fn measured_report() -> BenchReport {
    let opts = BenchOpts {
        quick: true,
        ..Default::default()
    };
    let mut harness = Harness::with_opts("roundtrip", &opts);
    let engine = Engine::new();
    let inst = Family::Uniform.instance(30, 4, 8, 2, 1);
    for solver in ["baseline-lpt", "approx-splittable-2"] {
        harness
            .bench_registered(&engine, solver, "uniform/30", &inst)
            .expect("registered solver benches");
    }
    harness.into_report()
}

#[test]
fn harness_report_round_trips_through_json() {
    let report = measured_report();
    assert_eq!(report.cases.len(), 2);
    let parsed = BenchReport::from_json(&report.to_json_string()).expect("parses back");
    assert_eq!(parsed, report);

    // Quality was captured for both solver cases and is sane.
    for case in &parsed.cases {
        assert_eq!(case.family.as_deref(), Some("uniform"));
        assert_eq!(case.size, Some(30));
        let ratio = case.ratio.expect("solver cases carry a quality ratio");
        assert!(
            ratio >= 1.0,
            "{}: ratio {ratio} below the lower bound",
            case.solver
        );
        assert!(
            ratio <= 3.0,
            "{}: ratio {ratio} implausibly bad",
            case.solver
        );
    }
}

/// Doubles every median in `report` — the synthetic regression the gate
/// must catch.
fn slowed_down(report: &BenchReport, factor: u64) -> BenchReport {
    let mut slow = report.clone();
    for case in &mut slow.cases {
        // Lift the case clear of the noise floor first so the verdict tests
        // the ratio logic, not the floor.
        case.median_ns = (case.median_ns + 1_000_000) * factor;
    }
    slow
}

#[test]
fn baseline_comparison_classifies_all_three_ways() {
    let baseline = slowed_down(&measured_report(), 1); // medians >= 1ms
    let config = CompareConfig::default();

    // Identical runs: everything within noise, nothing regresses.
    let same = compare(&baseline, &baseline, &config);
    assert!(!same.has_regressions());
    assert!(same.cases.iter().all(|c| c.verdict == Verdict::WithinNoise));

    // Synthetic 2x slowdown: every case regresses, the gate fails.
    let current = slowed_down(&baseline, 2);
    let regressed = compare(&current, &baseline, &config);
    assert!(regressed.has_regressions());
    assert_eq!(regressed.failures().len(), baseline.cases.len());
    for case in &regressed.cases {
        assert!(
            matches!(case.verdict, Verdict::TimeRegression { factor } if factor > 1.9),
            "{}: expected a time regression, got {:?}",
            case.label(),
            case.verdict
        );
    }

    // Viewed the other way around, the same diff is an improvement.
    let improved = compare(&baseline, &current, &config);
    assert!(!improved.has_regressions());
    assert!(improved
        .cases
        .iter()
        .all(|c| matches!(c.verdict, Verdict::Improvement { .. })));
}

#[test]
fn check_against_file_gates_a_2x_regression_end_to_end() {
    let dir = std::env::temp_dir().join(format!("ccs-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("baseline.json");

    let current = slowed_down(&measured_report(), 2);
    let fast_baseline = slowed_down(&measured_report(), 1);
    fast_baseline.write_file(&baseline_path).unwrap();

    // This is exactly the path `--check` takes before mapping
    // `has_regressions` to a failing exit code.
    let comparison = ccs_bench::baseline::check_against_file(
        &current,
        &baseline_path,
        &CompareConfig::default(),
    )
    .expect("baseline loads");
    assert!(comparison.has_regressions());

    // A missing baseline file is an error (maps to a failing exit, too).
    assert!(ccs_bench::baseline::check_against_file(
        &current,
        dir.join("nope.json"),
        &CompareConfig::default()
    )
    .is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_coverage_fails_but_new_coverage_does_not() {
    let full = slowed_down(&measured_report(), 1);
    let mut subset = full.clone();
    subset.cases.truncate(1);

    // Current run lost a case the baseline had: gate fails.
    let lost = compare(&subset, &full, &CompareConfig::default());
    assert!(lost.has_regressions());
    assert!(lost.cases.iter().any(|c| c.verdict == Verdict::Missing));

    // Current run added a case the baseline lacks: gate passes.
    let grown = compare(&full, &subset, &CompareConfig::default());
    assert!(!grown.has_regressions());
    assert!(grown.cases.iter().any(|c| c.verdict == Verdict::New));
}

#[test]
fn committed_repo_baseline_is_loadable_and_covers_the_registry() {
    // Guards the artifact at the repo root against schema drift: CI's
    // bench-smoke job is only meaningful while this file parses and spans
    // every registered solver and family.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let baseline = BenchReport::read_file(path).expect("BENCH_baseline.json parses");
    assert!(baseline.quick, "baseline is recorded with --quick");

    let engine = Engine::new();
    for name in engine.registry().names() {
        let families: std::collections::BTreeSet<_> = baseline
            .cases
            .iter()
            .filter(|c| c.solver == name)
            .filter_map(|c| c.family.clone())
            .collect();
        assert!(
            families.len() >= Family::ALL.len(),
            "baseline covers only {} families for solver {name}",
            families.len()
        );
    }
    for case in &baseline.cases {
        // The session_warm group times the warm-vs-cold mutate→solve loop
        // and the soak group records service-level completion latencies over
        // a whole trace; both span many instances, so no single quality
        // ratio applies (warm/cold payload equality is ccs-verify's job, not
        // the baseline's).  Every solution-producing group records one.
        if case.group == "session_warm" || case.group == "soak" {
            assert!(case.ratio.is_none(), "{}: unexpected ratio", case.case);
        } else {
            assert!(case.ratio.is_some(), "{}: no quality ratio", case.case);
        }
    }
}

#!/usr/bin/env bash
# Checks every relative link target in the repo's markdown documentation.
# External (http/https/mailto) links are skipped — the build environment is
# offline by design — and pure-anchor links into the same file are ignored.
# Exits non-zero listing every broken target.
set -euo pipefail
cd "$(dirname "$0")/.."

files=(README.md DESIGN.md ROADMAP.md CHANGES.md PAPER.md docs/*.md)
fail=0
for file in "${files[@]}"; do
    [ -f "$file" ] || { echo "$file: documented file missing"; fail=1; continue; }
    dir=$(dirname "$file")
    # Inline markdown links/images: [text](target) / ![alt](target).
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:*) continue ;;
        esac
        target="${target%%#*}"          # drop the fragment
        [ -z "$target" ] && continue    # same-file anchor
        if [ ! -e "$dir/$target" ]; then
            echo "$file: broken link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/ +"[^"]*"$//')
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed"
    exit 1
fi
echo "link check ok (${#files[@]} files)"

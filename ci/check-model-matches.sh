#!/usr/bin/env bash
# Guards the model registry's extension point: outside ccs-core, no code may
# enumerate the placement models by hardcoding `ScheduleKind::ALL` — every
# cross-model loop must go through `ModelSpec::all()` / `ModelSpec::paper()`
# so that registering a model (like the moldable extension) reaches every
# layer without a hunt for stale three-model match sites.  `ScheduleKind::ALL`
# itself stays: it is ccs-core's own definition of the paper trio, and
# ccs-core's tests pin its contents.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r hit; do
    echo "forbidden ScheduleKind::ALL outside ccs-core: $hit"
    fail=1
done < <(grep -rn --include='*.rs' 'ScheduleKind::ALL' \
    crates src examples tests 2>/dev/null \
    | grep -v '^crates/ccs-core/' || true)

if [ "$fail" -ne 0 ]; then
    echo "model-match check failed: iterate ModelSpec::all() (or ::paper()) instead"
    exit 1
fi
echo "model-match check ok (ScheduleKind::ALL confined to ccs-core)"

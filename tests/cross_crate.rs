//! Integration tests spanning the whole workspace: every algorithm produces a
//! schedule that the validators accept and that respects its proven
//! approximation guarantee on generated workloads.
use ccs::prelude::*;
use ccs_gen::GenParams;
use ccs_ptas::PtasParams;

fn families(seed: u64, jobs: usize, machines: u64, classes: u32, slots: u64) -> Vec<Instance> {
    let p = GenParams::new(jobs, machines, classes, slots);
    vec![
        ccs_gen::uniform(&p, seed),
        ccs_gen::zipf_classes(&p, seed),
        ccs_gen::data_placement(&p, seed),
        ccs_gen::video_on_demand(&p, seed),
    ]
}

#[test]
fn constant_factor_algorithms_respect_their_guarantees() {
    for seed in 0..5u64 {
        for inst in families(seed, 80, 8, 16, 3) {
            let split = ccs::approx::splittable_two_approx(&inst).unwrap();
            split.schedule.validate(&inst).unwrap();
            assert!(
                split.schedule.makespan(&inst)
                    <= Rational::from_int(2) * split.optimum_lower_bound()
            );

            let pre = ccs::approx::preemptive_two_approx(&inst).unwrap();
            pre.schedule.validate(&inst).unwrap();
            assert!(
                pre.schedule.makespan(&inst) <= Rational::from_int(2) * pre.optimum_lower_bound()
            );

            let np = ccs::approx::nonpreemptive_73_approx(&inst).unwrap();
            np.schedule.validate(&inst).unwrap();
            assert!(np.schedule.makespan(&inst) <= Rational::new(7, 3) * np.optimum_lower_bound());
        }
    }
}

#[test]
fn nonpreemptive_approx_vs_exact_optimum_on_tiny_instances() {
    for seed in 0..30u64 {
        let inst = ccs_gen::tiny_random(seed);
        let opt = match ccs::exact::nonpreemptive_optimum(&inst) {
            Ok(opt) => opt,
            Err(_) => continue,
        };
        let approx = ccs::approx::nonpreemptive_73_approx(&inst).unwrap();
        assert!(
            Rational::from(3 * approx.schedule.makespan_int(&inst)) <= Rational::from(7 * opt),
            "seed {seed}: ratio above 7/3"
        );
    }
}

#[test]
fn ptas_beats_or_matches_constant_factor_on_small_instances() {
    let params = PtasParams::with_delta_inv(3).unwrap();
    for seed in 0..6u64 {
        let inst = ccs_gen::tiny_random(seed);
        if inst.machines() > 4 {
            continue;
        }
        let approx = ccs::approx::splittable_two_approx(&inst).unwrap();
        let ptas = ccs::ptas::splittable_ptas(&inst, params).unwrap();
        ptas.schedule.validate(&inst).unwrap();
        // The PTAS never does worse than the schedule it warm-starts from by
        // more than its guarantee window.
        assert!(
            ptas.schedule.makespan(&inst) <= approx.schedule.makespan(&inst) * Rational::new(11, 4)
        );
    }
}

#[test]
fn preemptive_ptas_produces_valid_timetables() {
    let params = PtasParams::with_delta_inv(2).unwrap();
    for seed in 0..6u64 {
        let inst = ccs_gen::tiny_random(seed);
        if inst.machines() >= inst.num_jobs() as u64 {
            continue;
        }
        let res = ccs::ptas::preemptive_ptas(&inst, params).unwrap();
        res.schedule.validate(&inst).unwrap();
    }
}

#[test]
fn baselines_are_dominated_by_paper_algorithms_on_skewed_instances() {
    // One dominant class: baselines cannot split it, the paper's splittable
    // algorithm can.
    let inst = ccs_gen::adversarial_round_robin(8, 50);
    let baseline = ccs::baselines::whole_class_lpt(&inst).unwrap();
    let split = ccs::approx::splittable_two_approx(&inst).unwrap();
    assert!(split.schedule.makespan(&inst) < Rational::from(baseline.makespan_int(&inst)));
}

#[test]
fn exact_solvers_agree_with_bounds() {
    for seed in 0..20u64 {
        let inst = ccs_gen::tiny_random(seed);
        if let Ok(opt) = ccs::exact::splittable_optimum(&inst) {
            assert!(opt >= ccs::exact::strong_lower_bound(&inst, ScheduleKind::Splittable));
            let pre = ccs::exact::preemptive_optimum(&inst).unwrap();
            assert!(pre >= opt);
        }
        if let Ok(opt) = ccs::exact::nonpreemptive_optimum(&inst) {
            assert!(
                Rational::from(opt)
                    >= ccs::exact::strong_lower_bound(&inst, ScheduleKind::NonPreemptive)
            );
        }
    }
}

#[test]
fn json_roundtrip_through_the_public_api() {
    let inst = ccs_gen::uniform(&GenParams::new(20, 4, 6, 2), 9);
    let json = inst.to_json();
    let back = Instance::from_json(&json).unwrap();
    assert_eq!(inst, back);
}

#[test]
fn engine_reaches_every_algorithm_family_through_the_prelude() {
    let engine = Engine::new();
    // Fourteen solvers: three approximations, three PTASes, four exact
    // solvers, four baselines (incl. the moldable pair).
    assert_eq!(engine.registry().len(), 14);
    let inst = ccs_gen::uniform(&GenParams::new(60, 8, 12, 3), 11);
    for kind in ModelSpec::all().map(|spec| spec.kind) {
        let sol = engine.solve(&inst, &SolveRequest::auto(kind)).unwrap();
        sol.report.validate(&inst).unwrap();
        assert_eq!(sol.report.schedule.kind(), kind);
    }
    // Named access covers the baselines too.
    let sol = engine.solve_with("baseline-lpt", &inst).unwrap();
    sol.report.validate(&inst).unwrap();
}

#[test]
fn engine_batch_agrees_with_direct_algorithm_calls() {
    let engine = Engine::new();
    let instances: Vec<Instance> = (0..12u64)
        .map(|seed| ccs_gen::zipf_classes(&GenParams::new(50, 6, 10, 2), seed))
        .collect();
    let batch = engine.solve_batch(&instances, &SolveRequest::auto(ScheduleKind::Splittable));
    for (inst, sol) in instances.iter().zip(batch) {
        let sol = sol.unwrap();
        let direct = ccs::approx::splittable_two_approx(inst).unwrap();
        assert_eq!(sol.solver, "approx-splittable-2");
        assert_eq!(sol.report.makespan, direct.schedule.makespan(inst));
    }
}

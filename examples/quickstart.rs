//! Quickstart: build an instance and solve it end-to-end through the engine
//! — automatic algorithm selection per placement model, an explicit accuracy
//! request, and a parallel batch.
use ccs::prelude::*;

fn main() {
    // 4 machines with 2 class slots each; jobs (processing time, class label).
    let inst = instance_from_pairs(
        4,
        2,
        &[
            (9, 0),
            (7, 0),
            (12, 1),
            (4, 1),
            (6, 2),
            (3, 3),
            (8, 4),
            (5, 4),
        ],
    )
    .unwrap();
    println!(
        "instance: n = {}, C = {}, m = {}, c = {}, area bound = {}",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.class_slots(),
        inst.average_load()
    );

    let engine = Engine::new();
    println!(
        "registered solvers: {}",
        engine.registry().names().join(", ")
    );

    // One call per placement model; the portfolio picks the algorithm.
    for kind in ScheduleKind::ALL {
        let sol = engine.solve(&inst, &SolveRequest::auto(kind)).unwrap();
        sol.report.validate(&inst).unwrap();
        println!(
            "{kind:<15} via {:<24} ({}): makespan {}",
            sol.solver, sol.guarantee, sol.report.makespan
        );
    }

    // An explicit accuracy budget: 1 + ε below 7/3 forces a PTAS.
    let sol = engine
        .solve(
            &inst,
            &SolveRequest::epsilon(ScheduleKind::NonPreemptive, 1.2),
        )
        .unwrap();
    println!(
        "epsilon 1.2     via {:<24} ({}): makespan {}",
        sol.solver, sol.guarantee, sol.report.makespan
    );

    // The exact optimum, for reference.
    let sol = engine
        .solve(&inst, &SolveRequest::exact(ScheduleKind::NonPreemptive))
        .unwrap();
    println!(
        "exact           via {:<24} ({}): makespan {}",
        sol.solver, sol.guarantee, sol.report.makespan
    );

    // Batch solving: many instances in parallel, results in input order.
    let batch: Vec<Instance> = (0..16)
        .map(|seed| ccs::gen::uniform(&ccs::gen::GenParams::new(40, 6, 10, 2), seed))
        .collect();
    let solutions = engine.solve_batch(&batch, &SolveRequest::auto(ScheduleKind::Splittable));
    let worst_ratio = solutions
        .iter()
        .map(|s| s.as_ref().unwrap().report.ratio_upper_bound().to_f64())
        .fold(0.0f64, f64::max);
    println!(
        "batch: {} instances solved, worst makespan/lower-bound ratio {:.3}",
        solutions.len(),
        worst_ratio
    );
}

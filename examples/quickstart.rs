//! Quickstart: build an instance, run all three constant-factor algorithms
//! and the splittable PTAS, and print the resulting makespans.
use ccs::prelude::*;
use ccs_ptas::PtasParams;

fn main() {
    // 4 machines with 2 class slots each; jobs (processing time, class label).
    let inst = instance_from_pairs(
        4,
        2,
        &[(9, 0), (7, 0), (12, 1), (4, 1), (6, 2), (3, 3), (8, 4), (5, 4)],
    )
    .unwrap();
    println!(
        "instance: n = {}, C = {}, m = {}, c = {}, area bound = {}",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.class_slots(),
        inst.average_load()
    );

    let split = ccs::approx::splittable_two_approx(&inst).unwrap();
    println!("splittable 2-approx      : makespan {}", split.schedule.makespan(&inst));

    let pre = ccs::approx::preemptive_two_approx(&inst).unwrap();
    println!("preemptive 2-approx      : makespan {}", pre.schedule.makespan(&inst));

    let np = ccs::approx::nonpreemptive_73_approx(&inst).unwrap();
    println!("non-preemptive 7/3-approx: makespan {}", np.schedule.makespan_int(&inst));

    let ptas = ccs::ptas::splittable_ptas(&inst, PtasParams::with_delta_inv(4).unwrap()).unwrap();
    println!("splittable PTAS (δ = 1/4): makespan {}", ptas.schedule.makespan(&inst));

    let opt = ccs::exact::nonpreemptive_optimum(&inst).unwrap();
    println!("exact non-preemptive opt : makespan {opt}");
}

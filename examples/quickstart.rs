//! Quickstart: build an instance and solve it end-to-end through the engine
//! — automatic algorithm selection per placement model, the request builder
//! (accuracy, time budget, validation), asynchronous submit/handle
//! execution with cancellation, and a parallel batch.
use ccs::prelude::*;
use std::time::Duration;

fn main() {
    // 4 machines with 2 class slots each; jobs (processing time, class label).
    let inst = instance_from_pairs(
        4,
        2,
        &[
            (9, 0),
            (7, 0),
            (12, 1),
            (4, 1),
            (6, 2),
            (3, 3),
            (8, 4),
            (5, 4),
        ],
    )
    .unwrap();
    println!(
        "instance: n = {}, C = {}, m = {}, c = {}, area bound = {}",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.class_slots(),
        inst.average_load()
    );

    let engine = Engine::new();
    println!(
        "registered solvers: {}",
        engine.registry().names().join(", ")
    );

    // One call per placement model; the portfolio picks the algorithm.
    for kind in ModelSpec::all().map(|spec| spec.kind) {
        let sol = engine.solve(&inst, &SolveRequest::auto(kind)).unwrap();
        sol.report.validate(&inst).unwrap();
        println!(
            "{kind:<15} via {:<24} ({}): makespan {}",
            sol.solver, sol.guarantee, sol.report.makespan
        );
    }

    // The request builder: an explicit accuracy budget (1 + ε below 7/3
    // forces a PTAS), a wall-clock budget, and server-side re-validation.
    let req = SolveRequest::epsilon(ScheduleKind::NonPreemptive, 1.2)
        .unwrap()
        .with_budget(Duration::from_secs(2))
        .with_validate(true);
    let sol = engine.solve(&inst, &req).unwrap();
    println!(
        "epsilon 1.2     via {:<24} ({}): makespan {}",
        sol.solver, sol.guarantee, sol.report.makespan
    );

    // Asynchronous execution: submit returns a handle immediately; poll it,
    // wait on it, or cancel it.  Budgets start counting at submission.
    let handle = engine.submit(
        inst.clone(),
        &SolveRequest::exact(ScheduleKind::NonPreemptive).with_budget(Duration::from_secs(1)),
    );
    match handle.wait() {
        Ok(sol) => println!(
            "exact           via {:<24} ({}): makespan {}",
            sol.solver, sol.guarantee, sol.report.makespan
        ),
        Err(CcsError::DeadlineExceeded) => println!("exact           deadline exceeded"),
        Err(e) => println!("exact           failed: {e}"),
    }

    // Cancellation: a cancelled request fails fast and frees its worker.
    // A single-worker engine whose one worker is busy with a hard instance
    // makes the outcome deterministic — the victim is still queued when the
    // cancel lands.
    let single = Engine::new().with_workers(1);
    let hard: Vec<(u64, u32)> = (0..22)
        .map(|i| (1_000_003 + 9_973 * i as u64, (i % 6) as u32))
        .collect();
    let hard = instance_from_pairs(6, 2, &hard).unwrap();
    let blocker = single.submit(
        hard.clone(),
        &SolveRequest::exact(ScheduleKind::NonPreemptive).with_budget(Duration::from_millis(100)),
    );
    let doomed = single.submit(inst.clone(), &SolveRequest::auto(ScheduleKind::Splittable));
    doomed.cancel();
    match doomed.wait() {
        Err(CcsError::Cancelled) => println!("cancelled       request reported Cancelled"),
        other => println!("cancelled       unexpected outcome: {other:?}"),
    }
    drop(blocker); // keeps running to its deadline; result not needed

    // Batch solving: many instances on the worker pool, results in input
    // order, bit-identical to sequential solving.
    let batch: Vec<Instance> = (0..16)
        .map(|seed| ccs::gen::uniform(&ccs::gen::GenParams::new(40, 6, 10, 2), seed))
        .collect();
    let solutions = engine.solve_batch(&batch, &SolveRequest::auto(ScheduleKind::Splittable));
    let worst_ratio = solutions
        .iter()
        .map(|s| s.as_ref().unwrap().report.ratio_upper_bound().to_f64())
        .fold(0.0f64, f64::max);
    println!(
        "batch: {} instances solved on {} workers, worst makespan/lower-bound ratio {:.3}",
        solutions.len(),
        engine.workers(),
        worst_ratio
    );

    // Aggregate service stats collected by the engine's sink.
    let stats = engine.stats();
    println!(
        "stats: {} solves, {} checkpoints, {} search iterations",
        stats.solves, stats.checkpoints, stats.search_iterations
    );
}

//! Quality / running-time trade-off of the PTASs as the accuracy parameter δ
//! shrinks, on a small instance where the exact optimum is known.
use ccs::prelude::*;
use ccs_ptas::PtasParams;
use std::time::Instant;

fn main() {
    let inst = instance_from_pairs(3, 1, &[(10, 0), (9, 1), (8, 2), (4, 0), (3, 1)]).unwrap();
    let opt = ccs::exact::splittable_optimum(&inst).unwrap();
    println!("exact splittable optimum: {}", opt.to_f64());
    println!("{:>9} {:>12} {:>12} {:>12}", "1/δ", "makespan", "ratio", "seconds");
    for delta_inv in [2u64, 3, 4, 5] {
        let params = PtasParams::with_delta_inv(delta_inv).unwrap();
        let start = Instant::now();
        let res = ccs::ptas::splittable_ptas(&inst, params).unwrap();
        let secs = start.elapsed().as_secs_f64();
        let mk = res.schedule.makespan(&inst);
        println!(
            "{:>9} {:>12.2} {:>12.3} {:>12.4}",
            delta_inv,
            mk.to_f64(),
            mk.to_f64() / opt.to_f64(),
            secs
        );
    }
}

//! Quality / running-time trade-off of the PTASs as the accuracy parameter δ
//! shrinks, on a small instance where the exact optimum is known.  The sweep
//! drives the scheme through the unified `Solver` trait.
use ccs::prelude::*;
use ccs_ptas::{PtasParams, SplittablePtas};
use std::time::Instant;

fn main() {
    let inst = instance_from_pairs(3, 1, &[(10, 0), (9, 1), (8, 2), (4, 0), (3, 1)]).unwrap();
    let engine = Engine::new();
    let opt = engine
        .solve(&inst, &SolveRequest::exact(ScheduleKind::Splittable))
        .unwrap()
        .report
        .makespan;
    println!("exact splittable optimum: {}", opt.to_f64());
    println!(
        "{:>9} {:>14} {:>12} {:>12} {:>12}",
        "1/δ", "guarantee", "makespan", "ratio", "seconds"
    );
    for delta_inv in [2u64, 3, 4, 5] {
        let solver = SplittablePtas::new(PtasParams::with_delta_inv(delta_inv).unwrap());
        let start = Instant::now();
        let report = solver.solve(&inst).unwrap();
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>9} {:>14} {:>12.2} {:>12.3} {:>12.4}",
            delta_inv,
            solver.guarantee().to_string(),
            report.makespan.to_f64(),
            report.makespan.to_f64() / opt.to_f64(),
            secs
        );
    }
}

//! Video-on-demand: classes are movies (Zipf popularity), jobs are streaming
//! sessions, machines are streaming servers with a limited number of movies
//! in local cache.
use ccs::prelude::*;
use ccs_gen::GenParams;

fn main() {
    for servers in [8u64, 16, 32] {
        let params = GenParams::new(400, servers, 60, 4).with_times(5, 120);
        let inst = ccs_gen::video_on_demand(&params, 7);
        let approx = ccs::approx::nonpreemptive_73_approx(&inst).unwrap();
        let split = ccs::approx::splittable_two_approx(&inst).unwrap();
        let lb = ccs::exact::strong_lower_bound(&inst, ScheduleKind::NonPreemptive);
        println!(
            "servers {:>3}: lower bound {:>8.1}, non-preemptive 7/3 {:>6}, splittable 2-approx {:>8.1}",
            servers,
            lb.to_f64(),
            approx.schedule.makespan_int(&inst),
            split.schedule.makespan(&inst).to_f64(),
        );
    }
}

//! Video-on-demand: classes are movies (Zipf popularity), jobs are streaming
//! sessions, machines are streaming servers with a limited number of movies
//! in local cache.  Driven through the engine: one request per model, the
//! portfolio picks the algorithm.
use ccs::prelude::*;
use ccs_gen::GenParams;

fn main() {
    let engine = Engine::new();
    for servers in [8u64, 16, 32] {
        let params = GenParams::new(400, servers, 60, 4).with_times(5, 120);
        let inst = ccs_gen::video_on_demand(&params, 7);
        let np = engine
            .solve(&inst, &SolveRequest::auto(ScheduleKind::NonPreemptive))
            .unwrap();
        let split = engine
            .solve(&inst, &SolveRequest::auto(ScheduleKind::Splittable))
            .unwrap();
        let lb = ccs::exact::strong_lower_bound(&inst, ScheduleKind::NonPreemptive);
        println!(
            "servers {:>3}: lower bound {:>8.1}, {} {:>6}, {} {:>8.1}",
            servers,
            lb.to_f64(),
            np.solver,
            np.report.makespan,
            split.solver,
            split.report.makespan.to_f64(),
        );
    }
}

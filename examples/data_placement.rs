//! The data-placement scenario from the paper's introduction: operations need
//! one locally stored database (class); machines can hold only `c` databases.
//! Compares the paper's algorithms against naive baselines.
use ccs::prelude::*;
use ccs_gen::GenParams;

fn main() {
    let params = GenParams::new(300, 12, 40, 3).with_times(1, 500);
    let inst = ccs_gen::data_placement(&params, 2024);
    let lb = ccs::exact::strong_lower_bound(&inst, ScheduleKind::NonPreemptive);
    println!(
        "data placement: {} operations over {} databases, {} servers with {} database slots",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.class_slots()
    );
    println!("lower bound on the optimal makespan: {}", lb.to_f64());

    let rr = ccs::baselines::whole_class_round_robin(&inst).unwrap();
    let lpt = ccs::baselines::whole_class_lpt(&inst).unwrap();
    let greedy = ccs::baselines::greedy_first_fit(&inst).unwrap();
    let approx = ccs::approx::nonpreemptive_73_approx(&inst).unwrap();
    println!("whole-class round robin : {}", rr.makespan_int(&inst));
    println!("whole-class LPT         : {}", lpt.makespan_int(&inst));
    println!("greedy first fit        : {}", greedy.makespan_int(&inst));
    println!("paper 7/3-approximation : {}", approx.schedule.makespan_int(&inst));

    // If database replicas may be split across servers (splittable model),
    // the 2-approximation gets much closer to the area bound.
    let split = ccs::approx::splittable_two_approx(&inst).unwrap();
    println!("splittable 2-approx     : {}", split.schedule.makespan(&inst).to_f64());
}

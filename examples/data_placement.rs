//! The data-placement scenario from the paper's introduction: operations need
//! one locally stored database (class); machines can hold only `c` databases.
//! Compares the paper's algorithms against naive baselines, all driven
//! through the engine's solver registry.
use ccs::prelude::*;
use ccs_gen::GenParams;

fn main() {
    let params = GenParams::new(300, 12, 40, 3).with_times(1, 500);
    let inst = ccs_gen::data_placement(&params, 2024);
    let lb = ccs::exact::strong_lower_bound(&inst, ScheduleKind::NonPreemptive);
    println!(
        "data placement: {} operations over {} databases, {} servers with {} database slots",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.class_slots()
    );
    println!("lower bound on the optimal makespan: {}", lb.to_f64());

    let engine = Engine::new();
    for name in [
        "baseline-round-robin",
        "baseline-lpt",
        "baseline-greedy",
        "approx-nonpreemptive-7/3",
    ] {
        let sol = engine.solve_with(name, &inst).unwrap();
        println!("{name:<26}: {}", sol.report.makespan);
    }

    // If database replicas may be split across servers (splittable model),
    // the 2-approximation gets much closer to the area bound.
    let sol = engine.solve_with("approx-splittable-2", &inst).unwrap();
    println!(
        "approx-splittable-2       : {}",
        sol.report.makespan.to_f64()
    );
}

//! Walks through the mechanisms illustrated by the paper's five figures; the
//! same reproductions are available via `cargo run -p ccs-bench --bin
//! experiments -- --exp f1` (… f5).
use ccs::prelude::*;

fn main() {
    // Figure 1: round robin of ten classes over four machines.
    let jobs: Vec<(u64, u32)> = (0..10).map(|i| (10 - i as u64, i as u32)).collect();
    let inst = instance_from_pairs(4, 3, &jobs).unwrap();
    let split = ccs::approx::splittable_two_approx(&inst).unwrap();
    println!(
        "Figure 1 — round robin, makespan {}",
        split.schedule.makespan(&inst)
    );
    for machine in 0..4u64 {
        println!(
            "  machine {machine}: load {:>5} classes {:?}",
            split.schedule.load_of_machine(machine).to_f64(),
            split.schedule.classes_on_machine(&inst, machine)
        );
    }

    // Figure 2: the preemptive repacking shifts everything above the largest
    // class to start at T so no job overlaps itself.
    let pre = ccs::approx::preemptive_two_approx(&inst).unwrap();
    println!(
        "\nFigure 2 — preemptive repacking, makespan {}",
        pre.schedule.makespan(&inst)
    );

    // Figure 3: with exponentially many machines the schedule is emitted in
    // the compact run encoding, polynomial in n.
    let big = instance_from_pairs(1 << 40, 2, &jobs).unwrap();
    let compact = ccs::approx::splittable_two_approx(&big).unwrap();
    println!(
        "\nFigure 3 — m = 2^40: encoding size {} (pieces + runs), makespan {:.6}",
        compact.schedule.encoding_size(),
        compact.schedule.makespan(&big).to_f64()
    );

    // Figure 4: configurations dissolved into modules and jobs (non-preemptive
    // PTAS); Figure 5: the layer-assignment flow network (Lemma 16).
    println!("\nFigures 4 and 5 — see `experiments -- --exp f4` and `--exp f5`.");
}

//! # ccs — Class-Constrained Scheduling
//!
//! Umbrella crate re-exporting the whole workspace: the problem model
//! ([`core`]), the unified dispatch layer ([`engine`]), the constant-factor
//! approximation algorithms ([`approx`]), the polynomial time approximation
//! schemes ([`ptas`]), exact solvers for small instances ([`exact`]),
//! baselines, generators, the independent verification subsystem
//! ([`verify`]: certifier, differential oracle, metamorphic invariants and
//! the shrinking minimizer behind `ccs-fuzz`) and the substrates (N-fold
//! integer programming and flow networks).
//!
//! The recommended entry point is the [`engine::Engine`]: one call for any
//! placement model and accuracy budget, with automatic algorithm selection,
//! asynchronous submission onto a persistent worker pool (deadlines and
//! cancellation included) and parallel batch execution.  The per-crate free
//! functions remain available for direct access to a specific algorithm, and
//! the `ccs-serve` binary exposes the engine over newline-delimited JSON
//! (`ccs-wire/1`).
//!
//! ```
//! use ccs::prelude::*;
//!
//! let inst = instance_from_pairs(3, 2, &[(10, 0), (20, 1), (5, 0), (8, 2)]).unwrap();
//! let engine = Engine::new();
//! let sol = engine
//!     .solve(&inst, &SolveRequest::auto(ScheduleKind::Splittable))
//!     .unwrap();
//! sol.report.validate(&inst).unwrap();
//! assert!(sol.report.makespan <= Rational::from_int(2) * sol.report.lower_bound);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccs_approx as approx;
pub use ccs_baselines as baselines;
pub use ccs_core as core;
pub use ccs_engine as engine;
pub use ccs_exact as exact;
pub use ccs_gen as gen;
pub use ccs_ptas as ptas;
pub use ccs_verify as verify;
pub use flownet;
pub use nfold;

/// Convenience re-exports for quick starts: the whole problem model plus the
/// engine's request/submit/solve surface and the wire protocol.
pub mod prelude {
    pub use ccs_core::prelude::*;
    pub use ccs_engine::{
        wire, Accuracy, CacheOutcome, CacheStats, Engine, Solution, SolveHandle, SolveRequest,
        SolverRegistry,
    };
}

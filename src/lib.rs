//! # ccs — Class-Constrained Scheduling
//!
//! Umbrella crate re-exporting the whole workspace: the problem model
//! ([`core`]), the constant-factor approximation algorithms ([`approx`]), the
//! polynomial time approximation schemes ([`ptas`]), exact solvers for small
//! instances ([`exact`]), baselines, generators and the substrates (N-fold
//! integer programming and flow networks).
//!
//! ```
//! use ccs::prelude::*;
//!
//! let inst = instance_from_pairs(3, 2, &[(10, 0), (20, 1), (5, 0), (8, 2)]).unwrap();
//! let result = ccs::approx::splittable_two_approx(&inst).unwrap();
//! result.schedule.validate(&inst).unwrap();
//! assert!(result.schedule.makespan(&inst) <= Rational::from_int(2) * result.optimum_lower_bound());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccs_approx as approx;
pub use ccs_baselines as baselines;
pub use ccs_core as core;
pub use ccs_exact as exact;
pub use ccs_gen as gen;
pub use ccs_ptas as ptas;
pub use flownet;
pub use nfold;

/// Convenience re-exports for quick starts.
pub mod prelude {
    pub use ccs_core::prelude::*;
}
